//! The AWC agent state machine (§2.2 of the paper).

use std::collections::BTreeSet;

use discsp_core::{
    AgentId, AgentView, Domain, IncrementalEval, Nogood, NogoodIdx, NogoodStore, Priority, Rank,
    Value, VarValue, VariableId,
};
use discsp_runtime::{AgentNote, AgentStats, DistributedAgent, Envelope, Outbox};
use serde::{Deserialize, Serialize};

use crate::learning::{Deadend, Learning};
use crate::msg::AwcMessage;

/// Full configuration of an AWC agent: what it learns and what it (and
/// its peers) record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AwcConfig {
    /// The nogood generation strategy.
    pub learning: Learning,
    /// Size-bounded recording (§4.2): a recipient records a received
    /// nogood only when its size is at most this bound. `None` records
    /// everything — the unrestricted `Rslv`.
    pub record_bound: Option<usize>,
    /// When `false`, recipients do not record received nogoods at all —
    /// the `Rslv/norec` mode of the Table 4 redundancy study.
    pub record_received: bool,
    /// Activity-based forgetting: when `Some(n)`, each review starts by
    /// evicting the coldest learned nogoods until at most `n` remain
    /// (initial constraints are never evicted). `None` — the paper's
    /// configurations — never forgets. Defaults to `None`, including
    /// when deserializing configs written before this field existed.
    #[serde(default)]
    pub forget_limit: Option<usize>,
}

impl AwcConfig {
    /// Unrestricted resolvent-based learning (`Rslv`).
    pub fn resolvent() -> Self {
        AwcConfig {
            learning: Learning::Resolvent,
            record_bound: None,
            record_received: true,
            forget_limit: None,
        }
    }

    /// Mcs-based learning (`Mcs`).
    pub fn mcs() -> Self {
        AwcConfig {
            learning: Learning::Mcs,
            ..AwcConfig::resolvent()
        }
    }

    /// No learning (`No`).
    pub fn no_learning() -> Self {
        AwcConfig {
            learning: Learning::None,
            ..AwcConfig::resolvent()
        }
    }

    /// Size-bounded resolvent learning (`kthRslv`): only nogoods of size
    /// ≤ `k` are recorded by recipients.
    pub fn kth_resolvent(k: usize) -> Self {
        AwcConfig {
            record_bound: Some(k),
            ..AwcConfig::resolvent()
        }
    }

    /// Resolvent learning with recording disabled (`Rslv/norec`).
    pub fn resolvent_norec() -> Self {
        AwcConfig {
            record_received: false,
            ..AwcConfig::resolvent()
        }
    }

    /// Whether this configuration retains AWC's completeness guarantee.
    /// The termination proof needs every generated nogood recorded and
    /// kept: bounded recording (`kthRslv`), disabled recording
    /// (`/norec`), mcs minimization's restricted store, no learning, and
    /// forgetting all allow the search to revisit dead ends forever.
    /// Oracles (the fault-schedule explorer) treat a cutoff on a
    /// solvable instance as a bug only when this returns true.
    pub fn is_complete(&self) -> bool {
        self.learning == Learning::Resolvent
            && self.record_bound.is_none()
            && self.record_received
            && self.forget_limit.is_none()
    }

    /// Caps the learned-nogood store at `limit` entries, evicting the
    /// least active learned nogoods at the start of each review.
    pub fn with_forget_limit(self, limit: usize) -> Self {
        AwcConfig {
            forget_limit: Some(limit),
            ..self
        }
    }

    /// The label used in the paper's tables (`Rslv`, `Mcs`, `No`,
    /// `3rdRslv`, `Rslv/norec`, …). Forgetting configurations — which
    /// the paper does not study — append `/f<limit>`.
    pub fn label(&self) -> String {
        let base = match (self.learning, self.record_bound) {
            (Learning::Resolvent, Some(k)) => format!("{}Rslv", ordinal(k)),
            (learning, _) => learning.short_name().to_string(),
        };
        let base = if self.record_received {
            base
        } else {
            format!("{base}/norec")
        };
        match self.forget_limit {
            Some(limit) => format!("{base}/f{limit}"),
            None => base,
        }
    }
}

impl Default for AwcConfig {
    fn default() -> Self {
        AwcConfig::resolvent()
    }
}

fn ordinal(k: usize) -> String {
    let suffix = match (k % 10, k % 100) {
        (1, 11) | (2, 12) | (3, 13) => "th",
        (1, _) => "st",
        (2, _) => "nd",
        (3, _) => "rd",
        _ => "th",
    };
    format!("{k}{suffix}")
}

/// One AWC agent owning a single variable.
///
/// Implements [`DistributedAgent`], so it runs unchanged on the
/// synchronous simulator and the asynchronous runtime. Construct whole
/// populations with [`crate::AwcSolver`].
#[derive(Debug)]
pub struct AwcAgent {
    id: AgentId,
    var: VariableId,
    domain: Domain,
    value: Value,
    priority: Priority,
    view: AgentView,
    store: NogoodStore,
    /// Incremental violation cache over `store` × `view`. Refreshed at
    /// the top of every review; never meters checks itself (the review
    /// charges what the naive scan would cost).
    eval: IncrementalEval,
    outlinks: BTreeSet<AgentId>,
    config: AwcConfig,
    last_generated: Option<Nogood>,
    generated_before: BTreeSet<Nogood>,
    stats: AgentStats,
    /// Trace notes (learned nogoods) accumulated since the last drain.
    notes: Vec<AgentNote>,
    insoluble: bool,
}

impl AwcAgent {
    /// Creates an agent for `var` with its relevant constraint nogoods
    /// and constraint-graph neighborhood.
    ///
    /// `neighbors` lists the foreign variables sharing a nogood with
    /// `var` together with their owning agents; they form the initial
    /// `ok?` distribution list.
    ///
    /// # Panics
    ///
    /// Panics if `initial_value` is outside `domain`.
    pub fn new(
        id: AgentId,
        var: VariableId,
        domain: Domain,
        initial_value: Value,
        nogoods: Vec<Nogood>,
        neighbors: Vec<(VariableId, AgentId)>,
        config: AwcConfig,
    ) -> Self {
        assert!(
            domain.contains(initial_value),
            "initial value {initial_value} outside domain {domain}"
        );
        let outlinks = neighbors.iter().map(|&(_, agent)| agent).collect();
        AwcAgent {
            id,
            var,
            domain,
            value: initial_value,
            priority: Priority::ZERO,
            view: AgentView::new(),
            store: NogoodStore::with_nogoods(nogoods),
            eval: IncrementalEval::new(var),
            outlinks,
            config,
            last_generated: None,
            generated_before: BTreeSet::new(),
            stats: AgentStats::default(),
            notes: Vec::new(),
            insoluble: false,
        }
    }

    /// The variable this agent owns.
    pub fn var(&self) -> VariableId {
        self.var
    }

    /// The variable's current value.
    pub fn value(&self) -> Value {
        self.value
    }

    /// The variable's current priority.
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// The agent's nogood store (constraints plus recorded learned
    /// nogoods).
    pub fn store(&self) -> &NogoodStore {
        &self.store
    }

    /// The agent's current view of other variables.
    pub fn view(&self) -> &AgentView {
        &self.view
    }

    fn send_ok_to_all(&self, out: &mut Outbox<AwcMessage>) {
        for &peer in &self.outlinks {
            out.send(
                peer,
                AwcMessage::Ok {
                    var: self.var,
                    value: self.value,
                    priority: self.priority,
                },
            );
        }
    }

    fn ingest(&mut self, env: Envelope<AwcMessage>, out: &mut Outbox<AwcMessage>) -> bool {
        match env.payload {
            AwcMessage::Ok {
                var,
                value,
                priority,
            } => self.view.update(var, env.from, value, priority),
            AwcMessage::Nogood { nogood, owners } => {
                if nogood.is_empty() {
                    self.insoluble = true;
                    return false;
                }
                let within_bound = self.config.record_bound.is_none_or(|k| nogood.len() <= k);
                if self.config.record_received
                    && within_bound
                    && self.store.insert_learned(nogood.clone())
                {
                    // §2.2: "If the new nogood includes an unknown
                    // variable, the agent has to request the
                    // corresponding agent to send its value."
                    for &(var, owner) in &owners {
                        if var != self.var && !self.view.knows(var) {
                            out.send(owner, AwcMessage::RequestValue);
                        }
                    }
                    return true;
                }
                // An unrecorded (or duplicate) nogood still signals a
                // violation worth re-examining.
                true
            }
            AwcMessage::RequestValue => {
                self.outlinks.insert(env.from);
                out.send(
                    env.from,
                    AwcMessage::Ok {
                        var: self.var,
                        value: self.value,
                        priority: self.priority,
                    },
                );
                false
            }
        }
    }

    /// The AWC evaluation (§2.2): test higher nogoods, repair by value
    /// change when possible, otherwise learn and raise priority.
    fn review(&mut self, out: &mut Outbox<AwcMessage>) {
        if self.insoluble {
            return;
        }
        // Forget before syncing the cache, so the review evaluates the
        // post-eviction store. Eviction is unmetered: forgetting removes
        // work, it must not charge checks.
        if let Some(limit) = self.config.forget_limit {
            let evicted = self.store.forget(limit);
            if !evicted.is_empty() {
                self.notes.push(AgentNote::NogoodsForgotten {
                    count: evicted.len() as u64,
                });
            }
        }
        // Sync the incremental cache once per review; the store and view
        // are stable for the rest of the evaluation (learning only
        // *reads* the store, and generated nogoods are sent, not
        // self-recorded). The generation fast path makes this free when
        // nothing changed.
        self.eval.refresh_view(&self.store, &self.view);
        let own_rank = Rank::new(self.var, self.priority);

        // Partition the store into higher and lower nogoods. This is
        // priority bookkeeping, not nogood checking, so it is unmetered.
        // `entries` yields stable slot indices, which stay valid across
        // forgetting (unlike positions in an enumeration).
        let mut higher = Vec::new();
        let mut lower = Vec::new();
        for (i, ng) in self.store.entries() {
            if self.view.is_higher_nogood(ng, own_rank) {
                higher.push(i);
            } else {
                lower.push(i);
            }
        }

        // Is the current value consistent with all higher nogoods?
        let current_violated = self.charged_violated_among(&higher, self.value);
        // Violation hits make a nogood hot: forgetting keeps the nogoods
        // that actually prune the current search region.
        for &i in &current_violated {
            self.store.bump_activity(i);
        }
        if current_violated.is_empty() {
            return; // "an agent does nothing"
        }

        // Evaluate every alternative value against the higher nogoods.
        let mut violated_per_value: Vec<Vec<usize>> = vec![Vec::new(); self.domain.size()];
        for d in self.domain.iter() {
            violated_per_value[d.index()] = if d == self.value {
                current_violated.clone()
            } else {
                self.charged_violated_among(&higher, d)
            };
        }

        let consistent: Vec<Value> = self
            .domain
            .iter()
            .filter(|d| violated_per_value[d.index()].is_empty())
            .collect();

        if !consistent.is_empty() {
            // Repairable: min-conflict over *lower* nogoods.
            self.value = self.pick_min_conflict(&consistent, &lower);
            self.send_ok_to_all(out);
            return;
        }

        // Deadend.
        let deadend = Deadend {
            var: self.var,
            domain: self.domain,
            view: &self.view,
            store: &self.store,
            violated_per_value: &violated_per_value,
        };
        let learned = self.config.learning.learn(&deadend);

        if let Some(nogood) = learned {
            self.stats.nogoods_generated += 1;
            self.stats.largest_nogood = self.stats.largest_nogood.max(nogood.len() as u64);
            // Note the generation before the same-as-last dedup below:
            // the trace must explain `nogoods_generated` one-for-one.
            self.notes.push(AgentNote::NogoodLearned {
                size: nogood.len() as u64,
            });
            if !self.generated_before.insert(nogood.clone()) {
                self.stats.redundant_nogoods += 1;
            }
            // §2.2: "If the new nogood is the same as the previously
            // generated nogood, the agent does nothing."
            if self.last_generated.as_ref() == Some(&nogood) {
                return;
            }
            self.last_generated = Some(nogood.clone());
            if nogood.is_empty() {
                self.insoluble = true;
                return;
            }
            // Send to every agent having a variable in the nogood.
            // Learned nogoods only mention view variables, so the
            // filter is vacuous; it keeps this hot path panic-free.
            let owners: Vec<(VariableId, AgentId)> = nogood
                .vars()
                .filter_map(|v| self.view.entry(v).map(|entry| (v, entry.agent)))
                .collect();
            let mut recipients: BTreeSet<AgentId> =
                owners.iter().map(|&(_, agent)| agent).collect();
            recipients.remove(&self.id);
            for agent in recipients {
                out.send(
                    agent,
                    AwcMessage::Nogood {
                        nogood: nogood.clone(),
                        owners: owners.clone(),
                    },
                );
            }
        }

        // Break the deadend: raise priority, min-conflict over ALL
        // nogoods, announce.
        self.raise_priority();
        let all_values: Vec<Value> = self.domain.iter().collect();
        let everything: Vec<NogoodIdx> = self.store.indices().collect();
        self.value = self.pick_min_conflict(&all_values, &everything);
        self.send_ok_to_all(out);
    }

    /// Metered query: which of `indices` are violated with own variable
    /// at `value`?
    ///
    /// Answers from the [`IncrementalEval`] cache (no literal scans),
    /// but charges exactly one check per index — the cost of the naive
    /// scan this replaces. `cycle`/`maxcck` stay bit-identical to the
    /// pre-index implementation (pinned by the golden metric tests).
    fn charged_violated_among(&self, indices: &[NogoodIdx], value: Value) -> Vec<NogoodIdx> {
        self.store.charge_checks(indices.len() as u64);
        self.eval.violated_among(indices, value)
    }

    /// Picks the candidate value minimizing violations among `indices`
    /// (metered). Ties break toward the cyclically-next value after the
    /// current one, so symmetric neighbors don't oscillate in lockstep.
    fn pick_min_conflict(&self, candidates: &[Value], indices: &[NogoodIdx]) -> Value {
        debug_assert!(!candidates.is_empty());
        let d = self.domain.size();
        let distance = |v: Value| -> usize {
            let delta = (v.index() + d - self.value.index()) % d;
            if delta == 0 {
                d // staying put is the last resort
            } else {
                delta
            }
        };
        candidates
            .iter()
            .copied()
            .map(|v| (self.charged_violated_among(indices, v).len(), distance(v), v))
            .min_by_key(|&(violations, dist, _)| (violations, dist))
            .map(|(_, _, v)| v)
            .unwrap_or(self.value)
    }

    fn raise_priority(&mut self) {
        let pmax = self
            .view
            .iter()
            .map(|(_, e)| e.priority)
            .max()
            .unwrap_or(Priority::ZERO);
        self.priority = pmax.raise_to(self.priority).next();
    }
}

impl DistributedAgent for AwcAgent {
    type Message = AwcMessage;

    fn id(&self) -> AgentId {
        self.id
    }

    fn on_start(&mut self, out: &mut Outbox<AwcMessage>) {
        self.send_ok_to_all(out);
        // Unary (own-variable-only) nogoods are checkable before any
        // message arrives; an isolated agent would otherwise never be
        // activated to repair them.
        self.review(out);
    }

    fn on_batch(&mut self, inbox: Vec<Envelope<AwcMessage>>, out: &mut Outbox<AwcMessage>) {
        let mut need_review = false;
        for env in inbox {
            need_review |= self.ingest(env, out);
        }
        if need_review {
            self.review(out);
        }
    }

    fn on_nudge(&mut self, out: &mut Outbox<AwcMessage>) {
        // Re-announce the current value and priority. `ok?` ingestion is
        // idempotent (the view is keyed by variable), so this repairs
        // neighbor views staled by lost or reordered messages without
        // perturbing a consistent state.
        self.send_ok_to_all(out);
        // §2.2's "same as the previously generated nogood → do nothing"
        // rule assumes the previous copy is still working through the
        // system. But an agent can re-enter the identical deadend after
        // its neighbors have absorbed that nogood and gone quiet — it
        // then stays silent in a violated state and the whole run
        // stalls, even over perfect links. A recovery pass is exactly
        // the signal that the system went quiet, so the assumption is
        // dead: forget the dedup and re-evaluate. A consistent agent
        // still does nothing (the review returns at "an agent does
        // nothing"); a parked deadend re-sends its nogood, raises its
        // priority, and moves.
        self.last_generated = None;
        self.review(out);
    }

    fn assignments(&self) -> Vec<VarValue> {
        vec![VarValue::new(self.var, self.value)]
    }

    fn take_checks(&mut self) -> u64 {
        self.store.take_checks()
    }

    fn stats(&self) -> AgentStats {
        self.stats
    }

    fn detected_insoluble(&self) -> bool {
        self.insoluble
    }

    fn current_priority(&self) -> Option<u64> {
        Some(self.priority.get())
    }

    fn drain_notes(&mut self) -> Vec<AgentNote> {
        std::mem::take(&mut self.notes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_labels_match_paper() {
        assert_eq!(AwcConfig::resolvent().label(), "Rslv");
        assert_eq!(AwcConfig::mcs().label(), "Mcs");
        assert_eq!(AwcConfig::no_learning().label(), "No");
        assert_eq!(AwcConfig::kth_resolvent(3).label(), "3rdRslv");
        assert_eq!(AwcConfig::kth_resolvent(4).label(), "4thRslv");
        assert_eq!(AwcConfig::kth_resolvent(5).label(), "5thRslv");
        assert_eq!(AwcConfig::kth_resolvent(11).label(), "11thRslv");
        assert_eq!(AwcConfig::resolvent_norec().label(), "Rslv/norec");
        assert_eq!(
            AwcConfig::resolvent().with_forget_limit(100).label(),
            "Rslv/f100"
        );
        assert_eq!(
            AwcConfig::kth_resolvent(3).with_forget_limit(50).label(),
            "3rdRslv/f50"
        );
        assert_eq!(AwcConfig::default(), AwcConfig::resolvent());
    }

    fn toy_agent(config: AwcConfig) -> AwcAgent {
        AwcAgent::new(
            AgentId::new(0),
            VariableId::new(0),
            Domain::new(2),
            Value::new(0),
            vec![Nogood::of([
                (VariableId::new(0), Value::new(0)),
                (VariableId::new(1), Value::new(0)),
            ])],
            vec![(VariableId::new(1), AgentId::new(1))],
            config,
        )
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn out_of_domain_initial_value_rejected() {
        let _ = AwcAgent::new(
            AgentId::new(0),
            VariableId::new(0),
            Domain::new(2),
            Value::new(7),
            vec![],
            vec![],
            AwcConfig::resolvent(),
        );
    }

    #[test]
    fn start_announces_to_neighbors() {
        let mut agent = toy_agent(AwcConfig::resolvent());
        let mut out = Outbox::new(agent.id());
        agent.on_start(&mut out);
        let msgs = out.drain();
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].to, AgentId::new(1));
        assert!(matches!(msgs[0].payload, AwcMessage::Ok { .. }));
    }

    #[test]
    fn consistent_view_triggers_no_action() {
        let mut agent = toy_agent(AwcConfig::resolvent());
        let mut out = Outbox::new(agent.id());
        // Neighbor holds value 1 at priority 1 (so its nogood is higher
        // for x0): nogood (x0=0, x1=0) is tested but not violated.
        agent.on_batch(
            vec![Envelope::new(
                AgentId::new(1),
                AgentId::new(0),
                AwcMessage::Ok {
                    var: VariableId::new(1),
                    value: Value::new(1),
                    priority: Priority::new(1),
                },
            )],
            &mut out,
        );
        assert!(out.is_empty());
        assert_eq!(agent.value(), Value::new(0));
        // One nogood checked (the higher test of the current value).
        assert_eq!(agent.take_checks(), 1);
    }

    #[test]
    fn violated_higher_nogood_forces_value_change() {
        let mut agent = toy_agent(AwcConfig::resolvent());
        let mut out = Outbox::new(agent.id());
        // Neighbor (higher by id tie-break: x1 vs x0? x0 is smaller id so
        // x0 outranks x1 at equal priority) — make the neighbor's
        // priority higher explicitly.
        agent.on_batch(
            vec![Envelope::new(
                AgentId::new(1),
                AgentId::new(0),
                AwcMessage::Ok {
                    var: VariableId::new(1),
                    value: Value::new(0),
                    priority: Priority::new(1),
                },
            )],
            &mut out,
        );
        assert_eq!(agent.value(), Value::new(1));
        let msgs = out.drain();
        assert_eq!(msgs.len(), 1);
        assert!(matches!(
            msgs[0].payload,
            AwcMessage::Ok { value, .. } if value == Value::new(1)
        ));
    }

    #[test]
    fn nudge_breaks_repeated_nogood_stall() {
        // Both of x0's values are forbidden while x1 holds 0, so every
        // time x1 outranks x0 the agent lands in a deadend whose
        // resolvent is the same nogood {x1=0}. §2.2's "same as the
        // previously generated nogood → do nothing" rule then leaves the
        // agent silent in a violated state — over perfect links nobody
        // will ever message it again, and the whole run stalls. The
        // stall-recovery nudge must break exactly this state.
        let mut agent = AwcAgent::new(
            AgentId::new(0),
            VariableId::new(0),
            Domain::new(2),
            Value::new(0),
            vec![
                Nogood::of([
                    (VariableId::new(0), Value::new(0)),
                    (VariableId::new(1), Value::new(0)),
                ]),
                Nogood::of([
                    (VariableId::new(0), Value::new(1)),
                    (VariableId::new(1), Value::new(0)),
                ]),
            ],
            vec![(VariableId::new(1), AgentId::new(1))],
            AwcConfig::resolvent(),
        );
        let ok_from_x1 = |priority: u64| {
            Envelope::new(
                AgentId::new(1),
                AgentId::new(0),
                AwcMessage::Ok {
                    var: VariableId::new(1),
                    value: Value::new(0),
                    priority: Priority::new(priority),
                },
            )
        };
        // First deadend: learn and send the nogood, raise priority, move.
        let mut out = Outbox::new(agent.id());
        agent.on_batch(vec![ok_from_x1(5)], &mut out);
        assert!(out
            .drain()
            .iter()
            .any(|e| matches!(e.payload, AwcMessage::Nogood { .. })));
        // x1 outranks us again: the identical deadend regenerates the
        // identical nogood, and the §2.2 rule parks the agent in silence.
        let mut out = Outbox::new(agent.id());
        agent.on_batch(vec![ok_from_x1(10)], &mut out);
        assert!(out.is_empty(), "the repeated-nogood rule must stay silent");
        // The recovery pass re-announces AND re-evaluates: the suppressed
        // nogood goes out again and the agent climbs out of the deadend.
        let mut out = Outbox::new(agent.id());
        agent.on_nudge(&mut out);
        let msgs = out.drain();
        assert!(
            msgs.iter()
                .any(|e| matches!(e.payload, AwcMessage::Nogood { .. })),
            "nudge must re-send the suppressed nogood"
        );
        assert!(msgs
            .iter()
            .any(|e| matches!(e.payload, AwcMessage::Ok { .. })));
    }

    #[test]
    fn equal_priority_tie_breaks_by_variable_id() {
        // x0 (this agent) has the smaller id, so at equal priority it
        // outranks x1: the nogood is NOT higher and the agent stays put.
        let mut agent = toy_agent(AwcConfig::resolvent());
        let mut out = Outbox::new(agent.id());
        agent.on_batch(
            vec![Envelope::new(
                AgentId::new(1),
                AgentId::new(0),
                AwcMessage::Ok {
                    var: VariableId::new(1),
                    value: Value::new(0),
                    priority: Priority::ZERO,
                },
            )],
            &mut out,
        );
        assert_eq!(agent.value(), Value::new(0));
        assert!(out.is_empty());
    }

    #[test]
    fn request_value_adds_outlink_and_replies() {
        let mut agent = toy_agent(AwcConfig::resolvent());
        let mut out = Outbox::new(agent.id());
        agent.on_batch(
            vec![Envelope::new(
                AgentId::new(7),
                AgentId::new(0),
                AwcMessage::RequestValue,
            )],
            &mut out,
        );
        let msgs = out.drain();
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].to, AgentId::new(7));
        assert!(matches!(msgs[0].payload, AwcMessage::Ok { .. }));
        // Future announcements now include agent 7.
        let mut out2 = Outbox::new(agent.id());
        agent.on_start(&mut out2);
        assert_eq!(out2.len(), 2);
    }

    #[test]
    fn received_nogood_recorded_and_unknown_vars_requested() {
        let mut agent = toy_agent(AwcConfig::resolvent());
        let mut out = Outbox::new(agent.id());
        let foreign = VariableId::new(9);
        let ng = Nogood::of([
            (VariableId::new(0), Value::new(0)),
            (foreign, Value::new(1)),
        ]);
        agent.on_batch(
            vec![Envelope::new(
                AgentId::new(1),
                AgentId::new(0),
                AwcMessage::Nogood {
                    nogood: ng.clone(),
                    owners: vec![
                        (VariableId::new(0), AgentId::new(0)),
                        (foreign, AgentId::new(9)),
                    ],
                },
            )],
            &mut out,
        );
        assert!(agent.store().contains(&ng));
        let msgs = out.drain();
        assert!(msgs
            .iter()
            .any(|m| m.to == AgentId::new(9) && matches!(m.payload, AwcMessage::RequestValue)));
    }

    #[test]
    fn norec_mode_does_not_record() {
        let mut agent = toy_agent(AwcConfig::resolvent_norec());
        let mut out = Outbox::new(agent.id());
        let ng = Nogood::of([(VariableId::new(0), Value::new(1))]);
        agent.on_batch(
            vec![Envelope::new(
                AgentId::new(1),
                AgentId::new(0),
                AwcMessage::Nogood {
                    nogood: ng.clone(),
                    owners: vec![(VariableId::new(0), AgentId::new(0))],
                },
            )],
            &mut out,
        );
        assert!(!agent.store().contains(&ng));
    }

    #[test]
    fn size_bound_filters_recording() {
        let mut agent = toy_agent(AwcConfig::kth_resolvent(1));
        let mut out = Outbox::new(agent.id());
        let small = Nogood::of([(VariableId::new(0), Value::new(1))]);
        let big = Nogood::of([
            (VariableId::new(0), Value::new(0)),
            (VariableId::new(2), Value::new(0)),
        ]);
        for ng in [small.clone(), big.clone()] {
            agent.on_batch(
                vec![Envelope::new(
                    AgentId::new(1),
                    AgentId::new(0),
                    AwcMessage::Nogood {
                        nogood: ng,
                        owners: vec![],
                    },
                )],
                &mut out,
            );
        }
        assert!(agent.store().contains(&small));
        assert!(!agent.store().contains(&big));
    }

    #[test]
    fn forget_limit_evicts_learned_nogoods_and_notes_it() {
        let mut agent = toy_agent(AwcConfig::resolvent().with_forget_limit(0));
        let mut out = Outbox::new(agent.id());
        let ng = Nogood::of([(VariableId::new(0), Value::new(1))]);
        agent.on_batch(
            vec![Envelope::new(
                AgentId::new(1),
                AgentId::new(0),
                AwcMessage::Nogood {
                    nogood: ng.clone(),
                    owners: vec![(VariableId::new(0), AgentId::new(0))],
                },
            )],
            &mut out,
        );
        // The review following ingestion forgets the freshly recorded
        // nogood (limit 0); the initial constraint always survives.
        assert!(!agent.store().contains(&ng));
        assert_eq!(agent.store().len(), 1);
        let notes = agent.drain_notes();
        assert!(notes.contains(&AgentNote::NogoodsForgotten { count: 1 }));
    }

    #[test]
    fn empty_nogood_message_flags_insolubility() {
        let mut agent = toy_agent(AwcConfig::resolvent());
        let mut out = Outbox::new(agent.id());
        agent.on_batch(
            vec![Envelope::new(
                AgentId::new(1),
                AgentId::new(0),
                AwcMessage::Nogood {
                    nogood: Nogood::empty(),
                    owners: vec![],
                },
            )],
            &mut out,
        );
        assert!(agent.detected_insoluble());
    }

    #[test]
    fn unary_deadend_derives_empty_nogood() {
        // Both values of x0 prohibited by unary nogoods: first review
        // must derive the empty nogood and flag insolubility.
        let mut agent = AwcAgent::new(
            AgentId::new(0),
            VariableId::new(0),
            Domain::new(2),
            Value::new(0),
            vec![
                Nogood::of([(VariableId::new(0), Value::new(0))]),
                Nogood::of([(VariableId::new(0), Value::new(1))]),
            ],
            vec![(VariableId::new(1), AgentId::new(1))],
            AwcConfig::resolvent(),
        );
        let mut out = Outbox::new(agent.id());
        // Any view change triggers review.
        agent.on_batch(
            vec![Envelope::new(
                AgentId::new(1),
                AgentId::new(0),
                AwcMessage::Ok {
                    var: VariableId::new(1),
                    value: Value::new(0),
                    priority: Priority::ZERO,
                },
            )],
            &mut out,
        );
        assert!(agent.detected_insoluble());
    }
}
