//! Nogood learning strategies (§3 and §4 of the paper).
//!
//! At a *deadend* — every domain value of the agent's variable violates
//! some higher nogood — the agent may learn a new nogood:
//!
//! * [`Learning::Resolvent`] — the paper's contribution (§3.1): for each
//!   domain value pick one violated higher nogood (smallest, ties broken
//!   by highest priority), union the picks, and strip the own variable.
//! * [`Learning::Mcs`] — mcs-based learning (§4.1): seed with the
//!   resolvent, then shrink it to a minimal conflict set by metered
//!   deletion probing (the paper: "test whether a subset of the nogood is
//!   a conflict set or not from larger subsets to smaller subsets").
//! * [`Learning::None`] — no nogood is produced; the deadend is broken by
//!   the priority raise alone (§4.1), which costs the AWC its
//!   completeness.
//!
//! Size-bounded learning (§4.2, `kthRslv`) is a *recording* policy, not a
//! generation policy — see [`crate::AwcConfig::record_bound`].

use discsp_core::{AgentView, Domain, Nogood, NogoodStore, Value, VariableId};
use serde::{Deserialize, Serialize};

/// Which nogood a deadended agent generates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Learning {
    /// Resolvent-based learning (§3.1) — the paper's method.
    #[default]
    Resolvent,
    /// Mcs-based learning (§4.1): resolvent seed minimized to a minimal
    /// conflict set by deletion probing, every probe metered as nogood
    /// checks.
    Mcs,
    /// No learning (§4.1): deadends are broken by priority raises alone.
    None,
}

impl Learning {
    /// Short name used in reports (`Rslv`, `Mcs`, `No`).
    pub fn short_name(self) -> &'static str {
        match self {
            Learning::Resolvent => "Rslv",
            Learning::Mcs => "Mcs",
            Learning::None => "No",
        }
    }
}

/// Everything a learning strategy may consult at a deadend.
///
/// `violated_per_value[d]` holds store indices of the *higher* nogoods
/// violated under the agent view with the own variable set to value `d`;
/// the deadend condition is that none of these lists is empty.
#[derive(Debug)]
pub struct Deadend<'a> {
    /// The deadended variable.
    pub var: VariableId,
    /// Its domain.
    pub domain: Domain,
    /// The owner's current view.
    pub view: &'a AgentView,
    /// The owner's nogood store (evaluations through it are metered).
    pub store: &'a NogoodStore,
    /// Violated higher nogoods per domain value (store indices).
    pub violated_per_value: &'a [Vec<usize>],
}

impl Learning {
    /// Produces the learned nogood for this deadend, or `None` under
    /// [`Learning::None`].
    ///
    /// # Panics
    ///
    /// Panics if some domain value has no violated higher nogood — then
    /// the agent is not at a deadend and must not learn.
    pub fn learn(self, deadend: &Deadend<'_>) -> Option<Nogood> {
        match self {
            Learning::None => None,
            Learning::Resolvent => Some(resolvent(deadend)),
            Learning::Mcs => Some(minimize_conflict_set(deadend, resolvent(deadend))),
        }
    }
}

/// Builds the resolvent nogood (§3.1).
///
/// For each domain value, selects among the violated higher nogoods the
/// smallest one, breaking ties toward the one whose priority (the rank of
/// its lowest-ranked foreign variable) is highest; remaining ties keep the
/// earliest-recorded nogood. The result is the union of the selections
/// with every element of the own variable removed.
///
/// Selection itself performs no further nogood checks — the violated sets
/// were metered when the deadend was detected, matching the "reduced
/// computational cost" the paper claims for this method.
///
/// # Panics
///
/// Panics if some domain value has no violated higher nogood.
pub fn resolvent(deadend: &Deadend<'_>) -> Nogood {
    let union = resolvent_selections(deadend)
        .into_iter()
        .flat_map(|(_, selected)| {
            selected
                .elems()
                .iter()
                .copied()
                .filter(|e| e.var != deadend.var)
                .collect::<Vec<_>>()
        });
    // Elements agree with the single current view, so no conflicts arise.
    Nogood::new(union)
}

/// The per-value selections behind [`resolvent`]: for each domain value,
/// the violated higher nogood chosen to represent it (smallest, then
/// highest-priority). Exposed so harnesses can display the derivation —
/// the paper's Figure 1 walk-through is regenerated from this.
///
/// # Panics
///
/// Panics if some domain value has no violated higher nogood.
pub fn resolvent_selections(deadend: &Deadend<'_>) -> Vec<(Value, Nogood)> {
    deadend
        .domain
        .iter()
        .map(|value| {
            let candidates = &deadend.violated_per_value[value.index()];
            assert!(
                !candidates.is_empty(),
                "value {value} of {} is not prohibited: not a deadend",
                deadend.var
            );
            let selected = candidates
                .iter()
                .map(|&i| deadend.store.get(i).expect("stale store index")) // lint: allow(panic-path): a stale index is a resolvent-bookkeeping bug worth crashing on loudly
                .min_by(|a, b| {
                    a.len().cmp(&b.len()).then_with(|| {
                        let ra = deadend.view.nogood_rank(a, deadend.var);
                        let rb = deadend.view.nogood_rank(b, deadend.var);
                        // Higher rank preferred: reverse the comparison. A
                        // `None` rank (own-variable-only nogood) is the
                        // strongest pick — it prohibits unconditionally.
                        match (ra, rb) {
                            (None, None) => std::cmp::Ordering::Equal,
                            (None, Some(_)) => std::cmp::Ordering::Less,
                            (Some(_), None) => std::cmp::Ordering::Greater,
                            (Some(ra), Some(rb)) => rb.cmp(&ra),
                        }
                    })
                })
                .expect("candidate list is nonempty"); // lint: allow(panic-path): unreachable — the assert! above rejects empty candidate lists
            (value, selected.to_nogood())
        })
        .collect()
}

/// Shrinks `seed` to a *minimum* conflict set (§4.1's mcs-based
/// learning): "make a nogood with the resolvent-based learning and test
/// whether a subset of the nogood is a conflict set or not from larger
/// subsets to smaller subsets."
///
/// A subset `S` of the view is a *conflict set* when every domain value
/// of the deadend variable is prohibited by some recorded nogood lying
/// entirely inside `S ∪ {var}`. The property is monotone (supersets of a
/// conflict set are conflict sets), so scanning sizes downward and
/// stopping at the first size with no conflicting subset yields a
/// minimum-cardinality conflict set within the seed. Every nogood
/// evaluation during probing is metered through the store, which is
/// exactly why this method's `maxcck` runs high in Tables 1–3.
pub fn minimize_conflict_set(deadend: &Deadend<'_>, seed: Nogood) -> Nogood {
    let mut best = seed.clone();
    for size in (1..seed.len()).rev() {
        // Subsets are always drawn from the full seed: a smaller conflict
        // set need not nest inside the one found at the previous level.
        match smallest_level_hit(deadend, &seed, size) {
            Some(found) => best = found,
            None => break,
        }
    }
    best
}

/// Scans all `size`-element subsets of `seed` (lexicographically) and
/// returns the first conflict set found.
fn smallest_level_hit(deadend: &Deadend<'_>, seed: &Nogood, size: usize) -> Option<Nogood> {
    let elems = seed.elems();
    let k = elems.len();
    debug_assert!(size < k);
    // Standard combination enumeration over element indices.
    let mut indices: Vec<usize> = (0..size).collect();
    loop {
        let candidate = Nogood::new(indices.iter().map(|&i| elems[i]));
        if is_conflict_set(deadend, &candidate) {
            return Some(candidate);
        }
        // Advance to the next combination.
        let mut pos = size;
        loop {
            if pos == 0 {
                return None;
            }
            pos -= 1;
            if indices[pos] != pos + k - size {
                break;
            }
        }
        indices[pos] += 1;
        for i in (pos + 1)..size {
            indices[i] = indices[i - 1] + 1;
        }
    }
}

/// Metered test of the conflict-set property for a candidate subset.
///
/// Deliberately exhaustive — every stored nogood is evaluated for every
/// domain value, with no early exit. The check *counts* are the paper's
/// cost model for mcs-based learning (its `maxcck` runs 2–4× the
/// resolvent method's in Tables 1–3), and a short-circuiting scan would
/// understate them.
// The folds below intentionally avoid `any`/`all` short-circuiting so the
// probe's check counts reflect a full scan — see the doc comment.
#[allow(clippy::unnecessary_fold)]
fn is_conflict_set(deadend: &Deadend<'_>, candidate: &Nogood) -> bool {
    deadend
        .domain
        .iter()
        .map(|value| {
            let lookup = |var: VariableId| -> Option<Value> {
                if var == deadend.var {
                    Some(value)
                } else {
                    candidate.value_of(var)
                }
            };
            deadend
                .store
                .iter()
                .fold(false, |hit, ng| deadend.store.eval(ng, lookup) || hit)
        })
        .fold(true, |acc, prohibited| acc && prohibited)
}

#[cfg(test)]
mod tests {
    use super::*;
    use discsp_core::{AgentId, Priority};

    fn x(i: u32) -> VariableId {
        VariableId::new(i)
    }
    fn v(i: u16) -> Value {
        Value::new(i)
    }

    /// The paper's Figure 1, exactly: agent 5 colors x5 with r=0, y=1,
    /// g=2. Neighbors x1..x4 with values r, y, g, r; priorities 5, 3, 4, 2
    /// (x1 and x4 are pinned by the text: "their priorities are 5 and 2");
    /// x5 at priority 0 so every constraint nogood is higher. The agent
    /// holds the 12 arc nogoods plus the received nogood
    /// ((x3,g)(x4,r)(x5,y)).
    fn figure1() -> (AgentView, NogoodStore) {
        let mut view = AgentView::new();
        view.update(x(1), AgentId::new(1), v(0), Priority::new(5)); // x1 = r
        view.update(x(2), AgentId::new(2), v(1), Priority::new(3)); // x2 = y
        view.update(x(3), AgentId::new(3), v(2), Priority::new(4)); // x3 = g
        view.update(x(4), AgentId::new(4), v(0), Priority::new(2)); // x4 = r

        let mut store = NogoodStore::new();
        for neighbor in 1..=4u32 {
            for color in 0..3u16 {
                store.insert(Nogood::of([(x(neighbor), v(color)), (x(5), v(color))]));
            }
        }
        store.insert(Nogood::of([(x(3), v(2)), (x(4), v(0)), (x(5), v(1))]));
        (view, store)
    }

    fn violated_higher_per_value(
        view: &AgentView,
        store: &NogoodStore,
        var: VariableId,
        domain: Domain,
        own_priority: Priority,
    ) -> Vec<Vec<usize>> {
        let own_rank = discsp_core::Rank::new(var, own_priority);
        domain
            .iter()
            .map(|value| {
                let lookup = view.lookup_with(var, value);
                (0..store.len())
                    .filter(|&i| {
                        let ng = store.get(i).unwrap();
                        view.is_higher_nogood(ng, own_rank) && store.eval(ng, &lookup)
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn resolvent_matches_paper_figure1() {
        let (view, store) = figure1();
        let domain = Domain::new(3);
        let violated = violated_higher_per_value(&view, &store, x(5), domain, Priority::ZERO);
        // r is prohibited by two nogoods (x1 and x4 arcs), y by two (x2
        // arc and the ternary received nogood), g by one (x3 arc).
        assert_eq!(violated[0].len(), 2);
        assert_eq!(violated[1].len(), 2);
        assert_eq!(violated[2].len(), 1);

        let deadend = Deadend {
            var: x(5),
            domain,
            view: &view,
            store: &store,
            violated_per_value: &violated,
        };
        let learned = resolvent(&deadend);
        // The paper derives ((x1,r)(x2,y)(x3,g)).
        assert_eq!(
            learned,
            Nogood::of([(x(1), v(0)), (x(2), v(1)), (x(3), v(2))])
        );
    }

    #[test]
    fn resolvent_selection_performs_no_extra_checks() {
        let (view, store) = figure1();
        let domain = Domain::new(3);
        let violated = violated_higher_per_value(&view, &store, x(5), domain, Priority::ZERO);
        let before = store.checks();
        let deadend = Deadend {
            var: x(5),
            domain,
            view: &view,
            store: &store,
            violated_per_value: &violated,
        };
        let _ = resolvent(&deadend);
        assert_eq!(store.checks(), before);
    }

    #[test]
    fn mcs_is_subset_of_resolvent_and_costs_checks() {
        let (view, store) = figure1();
        let domain = Domain::new(3);
        let violated = violated_higher_per_value(&view, &store, x(5), domain, Priority::ZERO);
        let deadend = Deadend {
            var: x(5),
            domain,
            view: &view,
            store: &store,
            violated_per_value: &violated,
        };
        let seed = resolvent(&deadend);
        let before = store.checks();
        let mcs = minimize_conflict_set(&deadend, seed.clone());
        assert!(store.checks() > before, "probing must be metered");
        assert!(mcs.is_subset_of(&seed));
        // In Figure 1 the resolvent is already minimal: dropping any of
        // x1/x2/x3 frees the corresponding color.
        assert_eq!(mcs, seed);
    }

    #[test]
    fn mcs_shrinks_when_a_smaller_conflict_set_exists() {
        // x5 ∈ {0,1}; unary-style higher nogoods from x1 prohibit both
        // values, while x2's nogood also prohibits value 0. Seeding the
        // deletion probe with the full {x1, x2} union must shrink to
        // {x1} alone.
        let mut view = AgentView::new();
        view.update(x(1), AgentId::new(1), v(0), Priority::new(5));
        view.update(x(2), AgentId::new(2), v(0), Priority::new(4));
        let mut store = NogoodStore::new();
        store.insert(Nogood::of([(x(1), v(0)), (x(5), v(0))]));
        store.insert(Nogood::of([(x(1), v(0)), (x(5), v(1))]));
        store.insert(Nogood::of([(x(2), v(0)), (x(5), v(0))]));
        let domain = Domain::new(2);
        let violated = violated_higher_per_value(&view, &store, x(5), domain, Priority::ZERO);
        let deadend = Deadend {
            var: x(5),
            domain,
            view: &view,
            store: &store,
            violated_per_value: &violated,
        };
        let seed = Nogood::of([(x(1), v(0)), (x(2), v(0))]);
        let mcs = minimize_conflict_set(&deadend, seed);
        assert_eq!(mcs, Nogood::of([(x(1), v(0))]));
    }

    #[test]
    fn smallest_nogood_selected_per_value() {
        // Two nogoods prohibit value 0: a binary and a ternary. The
        // binary must be chosen.
        let mut view = AgentView::new();
        view.update(x(1), AgentId::new(1), v(0), Priority::new(1));
        view.update(x(2), AgentId::new(2), v(0), Priority::new(1));
        view.update(x(3), AgentId::new(3), v(0), Priority::new(1));
        let mut store = NogoodStore::new();
        store.insert(Nogood::of([(x(1), v(0)), (x(2), v(0)), (x(9), v(0))]));
        store.insert(Nogood::of([(x(3), v(0)), (x(9), v(0))]));
        let domain = Domain::new(1);
        let violated = vec![vec![0, 1]];
        let deadend = Deadend {
            var: x(9),
            domain,
            view: &view,
            store: &store,
            violated_per_value: &violated,
        };
        assert_eq!(resolvent(&deadend), Nogood::of([(x(3), v(0))]));
    }

    #[test]
    fn highest_priority_breaks_size_ties() {
        // Both nogoods are binary; the one through the higher-priority
        // variable must be selected — "we should notify the agent with
        // such a variable as early as possible" (§3.1).
        let mut view = AgentView::new();
        view.update(x(1), AgentId::new(1), v(0), Priority::new(9));
        view.update(x(2), AgentId::new(2), v(0), Priority::new(1));
        let mut store = NogoodStore::new();
        store.insert(Nogood::of([(x(2), v(0)), (x(9), v(0))]));
        store.insert(Nogood::of([(x(1), v(0)), (x(9), v(0))]));
        let domain = Domain::new(1);
        let violated = vec![vec![0, 1]];
        let deadend = Deadend {
            var: x(9),
            domain,
            view: &view,
            store: &store,
            violated_per_value: &violated,
        };
        assert_eq!(resolvent(&deadend), Nogood::of([(x(1), v(0))]));
    }

    #[test]
    fn unary_prohibitions_resolve_to_empty_nogood() {
        // Every value prohibited by an own-variable-only nogood: the
        // resolvent is empty — proof of insolubility.
        let view = AgentView::new();
        let mut store = NogoodStore::new();
        store.insert(Nogood::of([(x(0), v(0))]));
        store.insert(Nogood::of([(x(0), v(1))]));
        let domain = Domain::new(2);
        let violated = vec![vec![0], vec![1]];
        let deadend = Deadend {
            var: x(0),
            domain,
            view: &view,
            store: &store,
            violated_per_value: &violated,
        };
        let learned = resolvent(&deadend);
        assert!(learned.is_empty());
    }

    #[test]
    fn no_learning_returns_none() {
        let (view, store) = figure1();
        let domain = Domain::new(3);
        let violated = violated_higher_per_value(&view, &store, x(5), domain, Priority::ZERO);
        let deadend = Deadend {
            var: x(5),
            domain,
            view: &view,
            store: &store,
            violated_per_value: &violated,
        };
        assert_eq!(Learning::None.learn(&deadend), None);
        assert!(Learning::Resolvent.learn(&deadend).is_some());
        assert!(Learning::Mcs.learn(&deadend).is_some());
    }

    #[test]
    #[should_panic(expected = "not a deadend")]
    fn learning_without_deadend_panics() {
        let view = AgentView::new();
        let store = NogoodStore::new();
        let violated = vec![vec![]];
        let deadend = Deadend {
            var: x(0),
            domain: Domain::new(1),
            view: &view,
            store: &store,
            violated_per_value: &violated,
        };
        let _ = resolvent(&deadend);
    }

    #[test]
    fn short_names() {
        assert_eq!(Learning::Resolvent.short_name(), "Rslv");
        assert_eq!(Learning::Mcs.short_name(), "Mcs");
        assert_eq!(Learning::None.short_name(), "No");
        assert_eq!(Learning::default(), Learning::Resolvent);
    }
}
