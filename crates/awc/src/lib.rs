//! Asynchronous weak-commitment search (AWC) with pluggable nogood
//! learning — the algorithmic core of Hirayama & Yokoo, *The Effect of
//! Nogood Learning in Distributed Constraint Satisfaction* (ICDCS 2000).
//!
//! The AWC (Yokoo, CP'95) solves distributed CSPs with one variable per
//! agent: agents announce values with `ok?` messages, test *higher*
//! nogoods against their views, repair violations with min-conflict value
//! changes, and break deadends by learning a nogood and raising their
//! priority. This crate provides:
//!
//! * [`AwcAgent`] / [`AwcSolver`] — the algorithm, runnable on the
//!   synchronous simulator or the asynchronous runtime of
//!   `discsp-runtime`;
//! * [`Learning`] — resolvent-based (§3), mcs-based, and no-learning
//!   strategies, with size-bounded recording (§4.2) and the rec/norec
//!   switch (§4.1) configured via [`AwcConfig`];
//! * [`AbtAgent`] / [`AbtSolver`] — asynchronous backtracking, the AWC's
//!   ancestor (§1), as an additional baseline.
//!
//! # Examples
//!
//! ```
//! use discsp_awc::{AwcConfig, AwcSolver};
//! use discsp_core::{Assignment, DistributedCsp, Domain, Value};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = DistributedCsp::builder();
//! let x = b.variable(Domain::new(2));
//! let y = b.variable(Domain::new(2));
//! b.not_equal(x, y)?;
//! let problem = b.build()?;
//!
//! let solver = AwcSolver::new(AwcConfig::resolvent());
//! let init = Assignment::total([Value::new(0), Value::new(0)]);
//! let run = solver.solve_sync(&problem, &init)?;
//! assert!(run.outcome.metrics.termination.is_solved());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod abt;
mod agent;
mod learning;
mod msg;
mod multi;
mod solver;

pub use abt::{AbtAgent, AbtMessage, AbtSolver};
pub use agent::{AwcAgent, AwcConfig};
pub use learning::{minimize_conflict_set, resolvent, resolvent_selections, Deadend, Learning};
pub use msg::AwcMessage;
pub use multi::{MultiAwcAgent, MultiAwcMessage, MultiAwcSolver};
pub use solver::{AwcError, AwcSolver};
