//! The AWC message protocol.

use std::fmt;

use discsp_core::{AgentId, Nogood, Priority, Value, VariableId, Wire, WireError, WireReader};
use discsp_runtime::{Classify, MessageClass};
use serde::{Deserialize, Serialize};

use crate::agent::AwcConfig;
use crate::learning::Learning;

/// Messages exchanged by AWC agents (§2.2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AwcMessage {
    /// `ok?` — announces the sender's current value and priority for its
    /// variable.
    Ok {
        /// The announced variable.
        var: VariableId,
        /// Its current value.
        value: Value,
        /// Its current priority.
        priority: Priority,
    },
    /// `nogood` — carries a learned nogood to an agent whose variable
    /// appears in it. `owners` maps each variable in the nogood to its
    /// owning agent so the recipient can request values of variables it
    /// has never heard of.
    Nogood {
        /// The learned nogood.
        nogood: Nogood,
        /// Owner of each variable in the nogood.
        owners: Vec<(VariableId, AgentId)>,
    },
    /// Asks the recipient to announce its variable's value to the sender
    /// (and keep announcing it from now on). Sent when a received nogood
    /// mentions an unknown variable (§2.2).
    RequestValue,
}

impl Classify for AwcMessage {
    fn class(&self) -> MessageClass {
        match self {
            AwcMessage::Ok { .. } => MessageClass::Ok,
            AwcMessage::Nogood { .. } => MessageClass::Nogood,
            AwcMessage::RequestValue => MessageClass::Other,
        }
    }
}

impl fmt::Display for AwcMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AwcMessage::Ok {
                var,
                value,
                priority,
            } => write!(f, "ok?({var}={value}@{priority})"),
            AwcMessage::Nogood { nogood, .. } => write!(f, "nogood({nogood})"),
            AwcMessage::RequestValue => write!(f, "request-value"),
        }
    }
}

impl Wire for AwcMessage {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            AwcMessage::Ok {
                var,
                value,
                priority,
            } => {
                out.push(0);
                var.encode(out);
                value.encode(out);
                priority.encode(out);
            }
            AwcMessage::Nogood { nogood, owners } => {
                out.push(1);
                nogood.encode(out);
                owners.encode(out);
            }
            AwcMessage::RequestValue => out.push(2),
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8("AwcMessage")? {
            0 => {
                let var = VariableId::decode(r)?;
                let value = Value::decode(r)?;
                let priority = Priority::decode(r)?;
                Ok(AwcMessage::Ok {
                    var,
                    value,
                    priority,
                })
            }
            1 => {
                let nogood = Nogood::decode(r)?;
                let owners = Vec::<(VariableId, AgentId)>::decode(r)?;
                Ok(AwcMessage::Nogood { nogood, owners })
            }
            2 => Ok(AwcMessage::RequestValue),
            tag => Err(WireError::BadTag {
                context: "AwcMessage",
                tag,
            }),
        }
    }
}

impl Wire for Learning {
    fn encode(&self, out: &mut Vec<u8>) {
        let tag: u8 = match self {
            Learning::Resolvent => 0,
            Learning::Mcs => 1,
            Learning::None => 2,
        };
        out.push(tag);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8("Learning")? {
            0 => Ok(Learning::Resolvent),
            1 => Ok(Learning::Mcs),
            2 => Ok(Learning::None),
            tag => Err(WireError::BadTag {
                context: "Learning",
                tag,
            }),
        }
    }
}

impl Wire for AwcConfig {
    fn encode(&self, out: &mut Vec<u8>) {
        self.learning.encode(out);
        self.record_bound.map(|b| b as u64).encode(out);
        self.record_received.encode(out);
        self.forget_limit.map(|l| l as u64).encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let learning = Learning::decode(r)?;
        let record_bound = match Option::<u64>::decode(r)? {
            None => None,
            Some(bound) => Some(usize::try_from(bound).map_err(|_| WireError::Invalid {
                context: "AwcConfig.record_bound",
            })?),
        };
        let record_received = bool::decode(r)?;
        let forget_limit = match Option::<u64>::decode(r)? {
            None => None,
            Some(limit) => Some(usize::try_from(limit).map_err(|_| WireError::Invalid {
                context: "AwcConfig.forget_limit",
            })?),
        };
        Ok(AwcConfig {
            learning,
            record_bound,
            record_received,
            forget_limit,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        let ok = AwcMessage::Ok {
            var: VariableId::new(0),
            value: Value::new(1),
            priority: Priority::ZERO,
        };
        assert_eq!(ok.class(), MessageClass::Ok);
        let ng = AwcMessage::Nogood {
            nogood: Nogood::empty(),
            owners: vec![],
        };
        assert_eq!(ng.class(), MessageClass::Nogood);
        assert_eq!(AwcMessage::RequestValue.class(), MessageClass::Other);
    }

    #[test]
    fn display_forms() {
        let ok = AwcMessage::Ok {
            var: VariableId::new(2),
            value: Value::new(1),
            priority: Priority::new(3),
        };
        assert_eq!(ok.to_string(), "ok?(x2=1@3)");
        assert_eq!(AwcMessage::RequestValue.to_string(), "request-value");
    }

    #[test]
    fn messages_roundtrip_on_the_wire() {
        let samples = [
            AwcMessage::Ok {
                var: VariableId::new(7),
                value: Value::new(2),
                priority: Priority::new(11),
            },
            AwcMessage::Nogood {
                nogood: Nogood::of([
                    (VariableId::new(0), Value::new(1)),
                    (VariableId::new(3), Value::new(0)),
                ]),
                owners: vec![
                    (VariableId::new(0), AgentId::new(0)),
                    (VariableId::new(3), AgentId::new(3)),
                ],
            },
            AwcMessage::RequestValue,
        ];
        for msg in samples {
            assert_eq!(AwcMessage::from_bytes(&msg.to_bytes()).as_ref(), Ok(&msg));
        }
        assert!(matches!(
            AwcMessage::from_bytes(&[9]),
            Err(WireError::BadTag { .. })
        ));
    }

    #[test]
    fn configs_roundtrip_on_the_wire() {
        for config in [
            AwcConfig::resolvent(),
            AwcConfig::mcs(),
            AwcConfig::no_learning(),
            AwcConfig::kth_resolvent(3),
            AwcConfig::resolvent_norec(),
            AwcConfig::resolvent().with_forget_limit(100),
            AwcConfig::kth_resolvent(3).with_forget_limit(0),
        ] {
            assert_eq!(AwcConfig::from_bytes(&config.to_bytes()), Ok(config));
        }
    }
}
