//! The AWC message protocol.

use std::fmt;

use discsp_core::{AgentId, Nogood, Priority, Value, VariableId};
use discsp_runtime::{Classify, MessageClass};
use serde::{Deserialize, Serialize};

/// Messages exchanged by AWC agents (§2.2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AwcMessage {
    /// `ok?` — announces the sender's current value and priority for its
    /// variable.
    Ok {
        /// The announced variable.
        var: VariableId,
        /// Its current value.
        value: Value,
        /// Its current priority.
        priority: Priority,
    },
    /// `nogood` — carries a learned nogood to an agent whose variable
    /// appears in it. `owners` maps each variable in the nogood to its
    /// owning agent so the recipient can request values of variables it
    /// has never heard of.
    Nogood {
        /// The learned nogood.
        nogood: Nogood,
        /// Owner of each variable in the nogood.
        owners: Vec<(VariableId, AgentId)>,
    },
    /// Asks the recipient to announce its variable's value to the sender
    /// (and keep announcing it from now on). Sent when a received nogood
    /// mentions an unknown variable (§2.2).
    RequestValue,
}

impl Classify for AwcMessage {
    fn class(&self) -> MessageClass {
        match self {
            AwcMessage::Ok { .. } => MessageClass::Ok,
            AwcMessage::Nogood { .. } => MessageClass::Nogood,
            AwcMessage::RequestValue => MessageClass::Other,
        }
    }
}

impl fmt::Display for AwcMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AwcMessage::Ok {
                var,
                value,
                priority,
            } => write!(f, "ok?({var}={value}@{priority})"),
            AwcMessage::Nogood { nogood, .. } => write!(f, "nogood({nogood})"),
            AwcMessage::RequestValue => write!(f, "request-value"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        let ok = AwcMessage::Ok {
            var: VariableId::new(0),
            value: Value::new(1),
            priority: Priority::ZERO,
        };
        assert_eq!(ok.class(), MessageClass::Ok);
        let ng = AwcMessage::Nogood {
            nogood: Nogood::empty(),
            owners: vec![],
        };
        assert_eq!(ng.class(), MessageClass::Nogood);
        assert_eq!(AwcMessage::RequestValue.class(), MessageClass::Other);
    }

    #[test]
    fn display_forms() {
        let ok = AwcMessage::Ok {
            var: VariableId::new(2),
            value: Value::new(1),
            priority: Priority::new(3),
        };
        assert_eq!(ok.to_string(), "ok?(x2=1@3)");
        assert_eq!(AwcMessage::RequestValue.to_string(), "request-value");
    }
}
