//! Property-based tests of the learning invariants on randomly
//! generated deadend scenarios.

use discsp_awc::{minimize_conflict_set, resolvent, Deadend};
use discsp_core::{
    AgentId, AgentView, Domain, Nogood, NogoodStore, Priority, Rank, Value, VariableId,
};
use proptest::prelude::*;

const OWN: u32 = 0;

/// A randomly generated, guaranteed deadend: the view covers variables
/// 1..=k, the store holds one violated higher nogood per domain value
/// plus assorted extra nogoods (violated or not).
///
/// An extra nogood is its foreign `(var, value)` elements plus an
/// optional own-variable value.
type ExtraNogood = (Vec<(u32, u16)>, Option<u16>);

#[derive(Debug, Clone)]
struct Scenario {
    view_values: Vec<u16>,            // value of variable i+1
    domain: u16,                      // own domain size (2..=3)
    per_value_foreign: Vec<Vec<u32>>, // foreign vars of the forced nogood per value
    extra: Vec<ExtraNogood>,          // extra nogoods
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (2u16..=3, 3usize..8).prop_flat_map(|(domain, k)| {
        let view_values = proptest::collection::vec(0u16..3, k);
        let forced = proptest::collection::vec(
            proptest::collection::btree_set(1u32..=(k as u32), 1..=3.min(k)),
            domain as usize,
        );
        let extra = proptest::collection::vec(
            (
                proptest::collection::btree_map(1u32..=(k as u32), 0u16..3, 1..=2),
                proptest::option::of(0u16..domain),
            ),
            0..6,
        );
        (view_values, forced, extra).prop_map(move |(view_values, forced, extra)| Scenario {
            view_values,
            domain,
            per_value_foreign: forced
                .into_iter()
                .map(|s| s.into_iter().collect())
                .collect(),
            extra: extra
                .into_iter()
                .map(|(m, own)| (m.into_iter().collect(), own))
                .collect(),
        })
    })
}

fn build(scenario: &Scenario) -> (AgentView, NogoodStore, Vec<Vec<usize>>) {
    let own = VariableId::new(OWN);
    let mut view = AgentView::new();
    for (i, &value) in scenario.view_values.iter().enumerate() {
        let var = VariableId::new(i as u32 + 1);
        view.update(
            var,
            AgentId::new(i as u32 + 1),
            Value::new(value),
            Priority::new(1), // all foreign vars outrank the own var (prio 0)
        );
    }
    let mut store = NogoodStore::new();
    // Forced violated nogood per own value: foreign elements taken from
    // the view (so they match), own element = the value.
    for (d, foreign) in scenario.per_value_foreign.iter().enumerate() {
        let mut elems: Vec<(VariableId, Value)> = foreign
            .iter()
            .map(|&v| {
                (
                    VariableId::new(v),
                    Value::new(scenario.view_values[(v - 1) as usize]),
                )
            })
            .collect();
        elems.push((own, Value::new(d as u16)));
        store.insert(Nogood::of(elems));
    }
    // Extra nogoods with arbitrary values (violated or not).
    for (foreign, own_value) in &scenario.extra {
        let mut elems: Vec<(VariableId, Value)> = foreign
            .iter()
            .map(|&(v, value)| (VariableId::new(v), Value::new(value)))
            .collect();
        if let Some(d) = own_value {
            elems.push((own, Value::new(*d)));
        }
        store.insert(Nogood::of(elems));
    }

    let own_rank = Rank::new(own, Priority::ZERO);
    let violated: Vec<Vec<usize>> = (0..scenario.domain)
        .map(|d| {
            let lookup = view.lookup_with(own, Value::new(d));
            (0..store.len())
                .filter(|&i| {
                    let ng = store.get(i).unwrap();
                    view.is_higher_nogood(ng, own_rank) && store.eval(ng, &lookup)
                })
                .collect()
        })
        .collect();
    (view, store, violated)
}

/// Independent conflict-set checker (no shared code with the library).
fn is_conflict_set_brute(store: &NogoodStore, candidate: &Nogood, domain: u16) -> bool {
    (0..domain).all(|d| {
        store.iter().any(|ng| {
            ng.elems().iter().all(|e| {
                if e.var == VariableId::new(OWN) {
                    e.value == Value::new(d)
                } else {
                    candidate.value_of(e.var) == Some(e.value)
                }
            })
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn resolvent_invariants(scenario in arb_scenario()) {
        let (view, store, violated) = build(&scenario);
        // The construction guarantees a deadend.
        prop_assert!(violated.iter().all(|v| !v.is_empty()));
        let deadend = Deadend {
            var: VariableId::new(OWN),
            domain: Domain::new(scenario.domain),
            view: &view,
            store: &store,
            violated_per_value: &violated,
        };
        let learned = resolvent(&deadend);
        // Never mentions the own variable.
        prop_assert!(!learned.contains_var(VariableId::new(OWN)));
        // Every element matches the current view.
        for e in learned.elems() {
            prop_assert_eq!(view.value_of(e.var), Some(e.value));
        }
        // The resolvent is a conflict set: under it, every own value is
        // prohibited by some recorded nogood.
        prop_assert!(is_conflict_set_brute(&store, &learned, scenario.domain));
    }

    #[test]
    fn mcs_invariants(scenario in arb_scenario()) {
        let (view, store, violated) = build(&scenario);
        let deadend = Deadend {
            var: VariableId::new(OWN),
            domain: Domain::new(scenario.domain),
            view: &view,
            store: &store,
            violated_per_value: &violated,
        };
        let seed = resolvent(&deadend);
        let mcs = minimize_conflict_set(&deadend, seed.clone());
        // The mcs is a subset of the seed and still a conflict set.
        prop_assert!(mcs.is_subset_of(&seed));
        prop_assert!(is_conflict_set_brute(&store, &mcs, scenario.domain));
        // Minimum cardinality within the seed: brute-force all subsets
        // of the seed strictly smaller than the mcs (seeds are tiny).
        let elems = seed.elems();
        let n = elems.len();
        prop_assume!(n <= 10);
        for mask in 0u32..(1 << n) {
            let size = mask.count_ones() as usize;
            if size >= mcs.len() {
                continue;
            }
            let subset = Nogood::new(
                (0..n).filter(|&i| mask & (1 << i) != 0).map(|i| elems[i]),
            );
            prop_assert!(
                !is_conflict_set_brute(&store, &subset, scenario.domain),
                "subset {subset} smaller than the mcs {mcs} is also a conflict set"
            );
        }
    }
}
