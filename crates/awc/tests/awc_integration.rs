//! Integration tests for the AWC on structured scenarios: priority
//! dynamics, learning effects, rec/norec, and the multi-variable
//! execution model.

use discsp_awc::{AbtSolver, AwcConfig, AwcSolver, Learning, MultiAwcSolver};
use discsp_core::{
    AgentId, Assignment, DistributedCsp, Domain, Nogood, Termination, Value, VariableId,
};

fn v(i: u16) -> Value {
    Value::new(i)
}

/// A bipartite "crown" that forces backtracking: two cliques of size 2
/// joined so that greedy value choices collide.
fn crown() -> DistributedCsp {
    let mut b = DistributedCsp::builder();
    let vars: Vec<_> = (0..6).map(|_| b.variable(Domain::new(3))).collect();
    for i in 0..3 {
        for j in 3..6 {
            b.not_equal(vars[i], vars[j]).unwrap();
        }
    }
    b.build().unwrap()
}

/// A 10-variable chain of implications encoded as nogoods, with the two
/// ends pinned inconsistently unless the middle coordinates.
fn chain(n: usize) -> DistributedCsp {
    let mut b = DistributedCsp::builder();
    let vars: Vec<_> = (0..n).map(|_| b.variable(Domain::BOOL)).collect();
    for w in vars.windows(2) {
        // w0 = true → w1 = true  (prohibit true, false)
        b.nogood(Nogood::of([(w[0], Value::TRUE), (w[1], Value::FALSE)]))
            .unwrap();
    }
    // First variable must be true.
    b.nogood(Nogood::of([(vars[0], Value::FALSE)])).unwrap();
    b.build().unwrap()
}

#[test]
fn crown_solves_under_every_learning_mode() {
    let problem = crown();
    let init = Assignment::total(vec![v(0); 6]);
    for learning in [Learning::Resolvent, Learning::Mcs, Learning::None] {
        let config = AwcConfig {
            learning,
            ..AwcConfig::resolvent()
        };
        let run = AwcSolver::new(config).solve_sync(&problem, &init).unwrap();
        assert_eq!(run.outcome.metrics.termination, Termination::Solved);
        let solution = run.outcome.solution.unwrap();
        // All of one side equal is fine; the two sides must differ.
        assert!(problem.is_solution(&solution));
    }
}

#[test]
fn implication_chain_propagates_to_all_true() {
    let problem = chain(10);
    let init = Assignment::total(vec![Value::FALSE; 10]);
    let run = AwcSolver::new(AwcConfig::resolvent())
        .solve_sync(&problem, &init)
        .unwrap();
    assert_eq!(run.outcome.metrics.termination, Termination::Solved);
    let solution = run.outcome.solution.unwrap();
    for i in 0..10 {
        assert_eq!(solution.get(VariableId::new(i)), Some(Value::TRUE));
    }
}

#[test]
fn learning_reduces_cycles_on_hard_instance() {
    // A tight 3-coloring that forces deadends: K3 plus pendant cycle.
    let mut b = DistributedCsp::builder();
    let vars: Vec<_> = (0..8).map(|_| b.variable(Domain::new(3))).collect();
    for i in 0..3 {
        for j in (i + 1)..3 {
            b.not_equal(vars[i], vars[j]).unwrap();
        }
    }
    for i in 2..8 {
        b.not_equal(vars[i], vars[(i + 1) % 8]).unwrap();
    }
    b.not_equal(vars[3], vars[6]).unwrap();
    b.not_equal(vars[4], vars[7]).unwrap();
    let problem = b.build().unwrap();

    let init = Assignment::total(vec![v(0); 8]);
    let with = AwcSolver::new(AwcConfig::resolvent())
        .solve_sync(&problem, &init)
        .unwrap();
    let without = AwcSolver::new(AwcConfig::no_learning())
        .solve_sync(&problem, &init)
        .unwrap();
    assert!(with.outcome.metrics.termination.is_solved());
    assert!(without.outcome.metrics.termination.is_solved());
    assert!(
        with.outcome.metrics.cycles <= without.outcome.metrics.cycles,
        "learning {} vs none {}",
        with.outcome.metrics.cycles,
        without.outcome.metrics.cycles
    );
}

#[test]
fn norec_generates_more_or_equal_redundancy_on_hard_instance() {
    // K4 minus an edge, 3 colors: solvable but deadend-heavy from a
    // uniform start.
    let mut b = DistributedCsp::builder();
    let vars: Vec<_> = (0..5).map(|_| b.variable(Domain::new(3))).collect();
    for i in 0..4 {
        for j in (i + 1)..4 {
            if !(i == 0 && j == 1) {
                b.not_equal(vars[i], vars[j]).unwrap();
            }
        }
    }
    b.not_equal(vars[0], vars[4]).unwrap();
    b.not_equal(vars[1], vars[4]).unwrap();
    let problem = b.build().unwrap();
    let init = Assignment::total(vec![v(0); 5]);

    let rec = AwcSolver::new(AwcConfig::resolvent())
        .solve_sync(&problem, &init)
        .unwrap();
    let norec = AwcSolver::new(AwcConfig::resolvent_norec())
        .solve_sync(&problem, &init)
        .unwrap();
    assert!(rec.outcome.metrics.termination.is_solved());
    assert!(norec.outcome.metrics.termination.is_solved());
    // The norec run cannot be *better* at avoiding regeneration.
    assert!(
        norec.outcome.metrics.redundant_nogoods + norec.outcome.metrics.cycles
            >= rec.outcome.metrics.redundant_nogoods
    );
}

#[test]
fn nogoods_learned_are_logically_implied() {
    // Every nogood recorded by any agent must be violated by NO actual
    // solution of the problem (learned nogoods are implied constraints).
    use discsp_cspsolve::Backtracker;
    let problem = crown();
    let init = Assignment::total(vec![v(0); 6]);
    let solver = AwcSolver::new(AwcConfig::resolvent());
    let agents = solver.build_agents(&problem, &init).unwrap();
    let mut sim = discsp_runtime::SyncSimulator::new(agents);
    let run = sim.run(&problem).expect("runs");
    assert!(run.outcome.metrics.termination.is_solved());

    let solutions = Backtracker::new(&problem).enumerate(2000);
    assert!(!solutions.is_empty());
    for agent in sim.agents() {
        for ng in agent.store().iter() {
            for solution in &solutions {
                assert!(
                    !ng.is_violated_by(solution.lookup()),
                    "recorded nogood {ng} kills a real solution"
                );
            }
        }
    }
}

#[test]
fn priorities_rise_only_at_deadends() {
    let problem = crown();
    let init = Assignment::total(vec![v(0); 6]);
    let solver = AwcSolver::new(AwcConfig::resolvent());
    let agents = solver.build_agents(&problem, &init).unwrap();
    let mut sim = discsp_runtime::SyncSimulator::new(agents);
    let run = sim.run(&problem).expect("runs");
    let total_deadends: u64 = run.outcome.metrics.nogoods_generated;
    let total_priority: u64 = sim.agents().iter().map(|a| a.priority().get()).sum();
    // Every priority unit was paid for by a deadend (several deadends
    // can raise by more than one, so ≤ is the right direction only when
    // raises jump; the robust invariant is: no deadends ⇒ no priority).
    if total_deadends == 0 {
        assert_eq!(total_priority, 0);
    }
}

#[test]
fn abt_and_awc_agree_on_satisfiability_of_structured_instances() {
    for (name, problem) in [("crown", crown()), ("chain", chain(8))] {
        let n = problem.num_vars();
        let init = Assignment::total(vec![v(0); n]);
        let awc = AwcSolver::new(AwcConfig::resolvent())
            .solve_sync(&problem, &init)
            .unwrap();
        let abt = AbtSolver::new().solve_sync(&problem, &init).unwrap();
        assert_eq!(
            awc.outcome.metrics.termination.is_solved(),
            abt.outcome.metrics.termination.is_solved(),
            "{name}"
        );
    }
}

#[test]
fn multi_solver_handles_uneven_partitions() {
    // 7 variables over 3 agents: 4 + 2 + 1.
    let mut b = DistributedCsp::builder();
    let owners = [0u32, 0, 0, 0, 1, 1, 2];
    let vars: Vec<_> = owners
        .iter()
        .map(|&o| b.variable_owned_by(Domain::new(3), AgentId::new(o)))
        .collect();
    for i in 0..7 {
        b.not_equal(vars[i], vars[(i + 1) % 7]).unwrap();
    }
    let problem = b.build().unwrap();
    let init = Assignment::total(vec![v(0); 7]);
    let run = MultiAwcSolver::new(AwcConfig::resolvent())
        .solve_sync(&problem, &init)
        .unwrap();
    assert_eq!(run.outcome.metrics.termination, Termination::Solved);
    assert!(problem.is_solution(&run.outcome.solution.unwrap()));
}

#[test]
fn multi_solver_with_empty_agent() {
    // Agent 1 owns nothing; the dense agent set still runs.
    let mut b = DistributedCsp::builder();
    let x = b.variable_owned_by(Domain::new(2), AgentId::new(0));
    let y = b.variable_owned_by(Domain::new(2), AgentId::new(2));
    b.not_equal(x, y).unwrap();
    let problem = b.build().unwrap();
    assert_eq!(problem.num_agents(), 3);
    let init = Assignment::total(vec![v(0); 2]);
    let run = MultiAwcSolver::new(AwcConfig::resolvent())
        .solve_sync(&problem, &init)
        .unwrap();
    assert_eq!(run.outcome.metrics.termination, Termination::Solved);
}
