//! The M:N sharded event-loop executor: `run_virtual`'s semantics on
//! worker threads.
//!
//! `run_async` spawns one OS thread per agent, which caps realistic runs
//! at a few thousand agents. [`run_sharded`] keeps the deterministic
//! virtual-time semantics of [`run_virtual`](crate::run_virtual) but
//! executes agent activations on a fixed pool of worker threads: agents
//! live in slab-pooled per-shard arenas ([`Slab`]), each worker owns one
//! shard and drains its agents' mailbox batches, and all routing goes
//! through the single [`Router`] owned by the coordinator.
//!
//! **Why determinism survives M:N.** The coordinator runs the exact
//! control flow of `run_virtual` — the same start wave, quiescence
//! check, nudge recovery, tick bookkeeping, and cut-off rules. Each wave
//! is partitioned across shards by the seed-derived [`ShardPlan`];
//! workers return one buffered [`StepOutput`] per activated agent
//! (checks, assignments, trace events, outbound envelopes), and the
//! coordinator merges those outputs back in **ascending agent-id order**
//! before any of them touch the router or the trace. Ascending agent id
//! is precisely the order `run_virtual` activates agents in (its start
//! and nudge waves iterate ids 0..n; its delivery wave iterates
//! `take_due`'s BTreeMap, which is keyed by recipient id) — so the
//! router consumes every per-link fault stream in the same order, the
//! trace interleaves identically, and the report is bit-identical to
//! `run_virtual` for *any* worker count. The shard partition and each
//! shard's internal drain order are themselves pure functions of the run
//! seed, so even thread-interleaving-visible state (per-shard
//! [`StepRecorder`] memories) is replayed exactly.
//!
//! Trace recording under shard batching stays per-agent-correct: every
//! worker records through its own scratch [`RingBuffer`] and tags each
//! event with the wave's tick passed down in the job — a batch that
//! drains just before a nudge wave can never smear its events into the
//! nudge's tick, because ticks travel with jobs, not with threads.

use std::sync::mpsc::{channel, Receiver, Sender};

use discsp_core::{
    Assignment, DistributedCsp, RunMetrics, Termination, TrialOutcome, VarValue,
};
use discsp_trace::{RingBuffer, RuntimeKind, TraceEvent, TraceSink};

use crate::agent::{AgentStats, DistributedAgent, Outbox};
use crate::error::RuntimeError;
use crate::link::{VirtualConfig, VirtualReport};
use crate::message::Envelope;
use crate::pool::{ShardPlan, Slab};
use crate::recorder::StepRecorder;
use crate::router::Router;

/// Configuration of a sharded run: [`VirtualConfig`] semantics plus a
/// worker count. The worker count is a pure throughput knob — metrics,
/// traces, and fault counters are bit-identical for any value.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// The deterministic run configuration (seed, faults, budgets).
    pub base: VirtualConfig,
    /// Worker threads (one shard each); clamped to `1..=agents`.
    pub workers: usize,
}

impl ShardConfig {
    /// A default-semantics run on `workers` threads.
    pub fn new(workers: usize) -> Self {
        ShardConfig {
            base: VirtualConfig::default(),
            workers,
        }
    }

    /// Wraps an existing virtual-run configuration.
    pub fn with_base(base: VirtualConfig, workers: usize) -> Self {
        ShardConfig { base, workers }
    }
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig::new(4)
    }
}

/// One shard's delivery batch for a wave: `(slot, messages)` pairs in
/// ascending slot order.
type SlotInboxes<M> = Vec<(usize, Vec<Envelope<M>>)>;

/// One wave of work for a shard worker. Ticks travel with the job so a
/// worker can never stamp events with a stale wave's tick.
enum Job<M> {
    /// Run `on_start` for every agent in the shard (tick 0).
    Start,
    /// Run `on_nudge` for every agent in the shard.
    Nudge { tick: u64 },
    /// Deliver inbox batches: `(slot, messages)` pairs.
    Batch {
        tick: u64,
        inboxes: SlotInboxes<M>,
    },
    /// Drain final leftovers and report stats; the shard empties.
    Finish { tick: u64 },
}

/// The buffered result of one agent activation, merged id-sorted by the
/// coordinator before touching the router or the trace.
struct StepOutput<M> {
    agent: u32,
    checks: u64,
    insoluble: bool,
    assignments: Vec<VarValue>,
    events: Vec<TraceEvent>,
    outbox: Vec<Envelope<M>>,
    stats: AgentStats,
}

/// A worker-owned shard: a slab arena of agents plus the shard's private
/// recorder state. Slot order (0..len) is the seed-derived drain order
/// fixed by the [`ShardPlan`].
struct ShardWorker<A: DistributedAgent> {
    agents: Slab<A>,
    slots: usize,
    recorder: StepRecorder,
    scratch: RingBuffer,
}

impl<A: DistributedAgent> ShardWorker<A> {
    fn run(
        mut self,
        jobs: Receiver<Job<A::Message>>,
        replies: Sender<Vec<StepOutput<A::Message>>>,
    ) {
        while let Ok(job) = jobs.recv() {
            let reply = match job {
                Job::Start => self.wave(0, false),
                Job::Nudge { tick } => self.wave(tick, true),
                Job::Batch { tick, inboxes } => self.batch(tick, inboxes),
                Job::Finish { tick } => self.finish(tick),
            };
            if replies.send(reply).is_err() {
                return;
            }
        }
    }

    /// A full-shard wave: `on_start` or `on_nudge` for every agent, in
    /// slot (drain) order.
    fn wave(&mut self, tick: u64, nudge: bool) -> Vec<StepOutput<A::Message>> {
        let mut outputs = Vec::with_capacity(self.slots);
        for slot in 0..self.slots {
            let Some(agent) = self.agents.get_mut(slot) else {
                continue;
            };
            let mut out = Outbox::new(agent.id());
            if nudge {
                agent.on_nudge(&mut out);
            } else {
                agent.on_start(&mut out);
            }
            outputs.push(finish_step(
                &mut self.recorder,
                &mut self.scratch,
                agent,
                tick,
                out,
            ));
        }
        outputs
    }

    /// A delivery wave for the subset of slots that received mail, in
    /// slot (drain) order.
    fn batch(
        &mut self,
        tick: u64,
        mut inboxes: SlotInboxes<A::Message>,
    ) -> Vec<StepOutput<A::Message>> {
        inboxes.sort_unstable_by_key(|&(slot, _)| slot);
        let mut outputs = Vec::with_capacity(inboxes.len());
        for (slot, inbox) in inboxes {
            let Some(agent) = self.agents.get_mut(slot) else {
                continue;
            };
            let mut out = Outbox::new(agent.id());
            agent.on_batch(inbox, &mut out);
            outputs.push(finish_step(
                &mut self.recorder,
                &mut self.scratch,
                agent,
                tick,
                out,
            ));
        }
        outputs
    }

    /// Removes every agent from the arena, surfacing leftover checks and
    /// final stats (the end-of-run accounting `run_virtual` does inline).
    fn finish(&mut self, tick: u64) -> Vec<StepOutput<A::Message>> {
        let mut outputs = Vec::with_capacity(self.agents.len());
        for slot in 0..self.slots {
            let Some(mut agent) = self.agents.remove(slot) else {
                continue;
            };
            let leftover = agent.take_checks();
            let mut events = Vec::new();
            if leftover > 0 && self.scratch.enabled() {
                events.push(TraceEvent::AgentStep {
                    cycle: tick,
                    agent: agent.id(),
                    checks: leftover,
                });
            }
            outputs.push(StepOutput {
                agent: agent.id().raw(),
                checks: leftover,
                insoluble: false,
                assignments: Vec::new(),
                events,
                outbox: Vec::new(),
                stats: agent.stats(),
            });
        }
        outputs
    }
}

/// Shared post-activation bookkeeping: drain checks and notes, record
/// the step through the shard's recorder into the scratch buffer, and
/// package everything the coordinator needs.
fn finish_step<A: DistributedAgent>(
    recorder: &mut StepRecorder,
    scratch: &mut RingBuffer,
    agent: &mut A,
    tick: u64,
    mut out: Outbox<A::Message>,
) -> StepOutput<A::Message> {
    let checks = agent.take_checks();
    recorder.record_step(agent, tick, checks, scratch);
    StepOutput {
        agent: agent.id().raw(),
        checks,
        insoluble: agent.detected_insoluble(),
        assignments: agent.assignments(),
        events: scratch.take(),
        outbox: out.drain(),
        stats: AgentStats::default(),
    }
}

/// One shard's coordinator-side handle.
struct ShardHandle<M> {
    jobs: Sender<Job<M>>,
    replies: Receiver<Vec<StepOutput<M>>>,
}

/// Sends one job per shard and collects the merged, id-sorted outputs.
/// `make` is called once per shard index; shards receiving `None` are
/// skipped (a delivery wave only wakes shards that got mail).
fn run_wave<M>(
    shards: &[ShardHandle<M>],
    mut make: impl FnMut(usize) -> Option<Job<M>>,
) -> Result<Vec<StepOutput<M>>, RuntimeError> {
    let mut involved = Vec::with_capacity(shards.len());
    for (index, shard) in shards.iter().enumerate() {
        let Some(job) = make(index) else {
            continue;
        };
        shard
            .jobs
            .send(job)
            .map_err(|_| RuntimeError::ShardWorkerDied { shard: index })?;
        involved.push(index);
    }
    let mut outputs = Vec::new();
    for index in involved {
        let Some(shard) = shards.get(index) else {
            continue;
        };
        let reply = shard
            .replies
            .recv()
            .map_err(|_| RuntimeError::ShardWorkerDied { shard: index })?;
        outputs.extend(reply);
    }
    outputs.sort_unstable_by_key(|o| o.agent);
    Ok(outputs)
}

/// Runs `agents` on the M:N sharded executor: `config.workers` threads,
/// each owning a seed-derived shard of the population, reproducing
/// [`run_virtual`](crate::run_virtual)'s deterministic virtual-time
/// semantics bit for bit. Metrics, fault counters, the fault log, and
/// the trace (up to the `RunEnd` runtime stamp) are identical to a
/// `run_virtual` of the same `(agents, problem, config.base)` — and
/// therefore identical across any two worker counts.
///
/// # Errors
///
/// [`RuntimeError::NonDenseAgentIds`] unless agent *i* reports id *i*;
/// [`RuntimeError::UnknownRecipient`] when a message addresses an agent
/// outside the population; [`RuntimeError::ShardWorkerDied`] when a
/// worker thread dies mid-run (an agent panicked — the panic also
/// resurfaces when the worker scope unwinds).
pub fn run_sharded<A>(
    agents: Vec<A>,
    problem: &DistributedCsp,
    config: &ShardConfig,
) -> Result<VirtualReport, RuntimeError>
where
    A: DistributedAgent + Send,
{
    for (position, agent) in agents.iter().enumerate() {
        if agent.id().index() != position {
            return Err(RuntimeError::NonDenseAgentIds {
                position,
                found: agent.id(),
            });
        }
    }
    let n = agents.len();
    let base = &config.base;
    let plan = ShardPlan::new(n, config.workers, base.seed);
    let mut net: Router<A::Message> = match &base.schedule {
        Some(schedule) => Router::scripted(n, schedule, base.seed, base.record_trace),
        None => Router::new(n, base.link, base.seed, base.record_trace),
    };
    // Deal the agents into per-shard slab arenas in plan (drain) order;
    // sequential insertion into an empty slab makes slot == drain rank.
    let mut by_id: Vec<Option<A>> = agents.into_iter().map(Some).collect();
    let mut arenas = Vec::with_capacity(plan.workers());
    for shard in 0..plan.workers() {
        let members = plan.members(shard);
        let mut arena = Slab::with_capacity(members.len());
        for &agent_id in members {
            if let Some(agent) = by_id.get_mut(agent_id).and_then(Option::take) {
                arena.insert(agent);
            }
        }
        arenas.push(arena);
    }
    drop(by_id);

    std::thread::scope(|scope| {
        let mut shards: Vec<ShardHandle<A::Message>> = Vec::with_capacity(arenas.len());
        for arena in arenas {
            let (job_tx, job_rx) = channel();
            let (reply_tx, reply_rx) = channel();
            let worker = ShardWorker {
                slots: arena.len(),
                agents: arena,
                recorder: StepRecorder::new(),
                scratch: if base.record_trace {
                    RingBuffer::new()
                } else {
                    RingBuffer::disabled()
                },
            };
            scope.spawn(move || worker.run(job_rx, reply_tx));
            shards.push(ShardHandle {
                jobs: job_tx,
                replies: reply_rx,
            });
        }

        let mut metrics = RunMetrics::new(Termination::CutOff);
        let mut snapshot = Assignment::empty(problem.num_vars());
        let mut activations: u64 = 0;
        let mut nudges: u64 = 0;
        let mut tick: u64 = 0;
        let mut insoluble = false;
        let termination;

        // Tick 0: every agent announces its initial state — the same
        // start-wave accounting as run_virtual.
        let starts = run_wave(&shards, |_| Some(Job::Start))?;
        let mut start_max: u64 = 0;
        for output in starts {
            activations += 1;
            metrics.total_checks += output.checks;
            start_max = start_max.max(output.checks);
            insoluble |= output.insoluble;
            for vv in output.assignments {
                snapshot.set(vv.var, vv.value);
            }
            for event in output.events {
                net.sink().record(event);
            }
            for env in output.outbox {
                net.route(0, env)?;
            }
        }
        metrics.maxcck += start_max;
        net.sink().record(TraceEvent::CycleBarrier { cycle: 0 });

        loop {
            if insoluble {
                termination = Termination::Insoluble;
                break;
            }
            if base.stop_on_first_solution && problem.is_solution(&snapshot) {
                termination = Termination::Solved;
                break;
            }
            let Some(due) = net.next_due() else {
                // Quiescent: the queue is the in-flight set. A fully
                // parked system (every copy dropped) lands here too —
                // that is a *recoverable* stall, answered by a
                // retransmission flush plus a nudge wave, never a
                // deadlock report.
                if problem.is_solution(&snapshot) {
                    termination = Termination::Solved;
                    break;
                }
                // As in `run_virtual`: recovery is not gated on the
                // fault policy, since a protocol can park itself
                // without losing a message.
                if nudges >= base.max_nudges {
                    termination = Termination::CutOff;
                    break;
                }
                nudges += 1;
                tick += 1;
                net.flush_parked(tick);
                let wave = run_wave(&shards, |_| Some(Job::Nudge { tick }))?;
                let mut wave_max: u64 = 0;
                for output in wave {
                    metrics.total_checks += output.checks;
                    wave_max = wave_max.max(output.checks);
                    for event in output.events {
                        net.sink().record(event);
                    }
                    for env in output.outbox {
                        net.route(tick, env)?;
                    }
                }
                metrics.maxcck += wave_max;
                net.sink().record(TraceEvent::CycleBarrier { cycle: tick });
                if net.is_quiescent() {
                    termination = Termination::CutOff;
                    break;
                }
                continue;
            };
            if due > base.max_ticks {
                termination = Termination::CutOff;
                break;
            }
            tick = tick.max(due);

            // Deliver every message due this tick: partition the inboxes
            // to their shards, drain in parallel, merge id-sorted.
            let mut per_shard: Vec<SlotInboxes<A::Message>> =
                (0..shards.len()).map(|_| Vec::new()).collect();
            for (recipient, inbox) in net.take_due(due, tick) {
                let (shard, slot) = plan.placement_of(recipient);
                if let Some(bucket) = per_shard.get_mut(shard) {
                    bucket.push((slot, inbox));
                }
            }
            let wave = run_wave(&shards, |index| {
                match per_shard.get_mut(index) {
                    Some(bucket) if !bucket.is_empty() => Some(Job::Batch {
                        tick,
                        inboxes: std::mem::take(bucket),
                    }),
                    _ => None,
                }
            })?;
            let mut wave_max: u64 = 0;
            for output in wave {
                activations += 1;
                metrics.total_checks += output.checks;
                wave_max = wave_max.max(output.checks);
                insoluble |= output.insoluble;
                for vv in output.assignments {
                    snapshot.set(vv.var, vv.value);
                }
                for event in output.events {
                    net.sink().record(event);
                }
                for env in output.outbox {
                    net.route(tick, env)?;
                }
            }
            metrics.maxcck += wave_max;
            net.sink().record(TraceEvent::CycleBarrier { cycle: tick });
        }

        metrics.termination = termination;
        metrics.cycles = tick;
        let (ok, nogood, other) = net.class_counts();
        metrics.ok_messages = ok;
        metrics.nogood_messages = nogood;
        metrics.other_messages = other;

        // End-of-run accounting: leftover checks surface as final steps
        // (id-sorted, exactly as run_virtual's 0..n sweep), stats absorb.
        let mut stats = AgentStats::default();
        let finals = run_wave(&shards, |_| Some(Job::Finish { tick }))?;
        for output in finals {
            if output.checks > 0 {
                metrics.total_checks += output.checks;
            }
            for event in output.events {
                net.sink().record(event);
            }
            stats.absorb(output.stats);
        }
        net.link_totals().fold_into(&mut stats);
        metrics.nogoods_generated = stats.nogoods_generated;
        metrics.redundant_nogoods = stats.redundant_nogoods;
        metrics.largest_nogood = stats.largest_nogood;
        metrics.messages_sent = stats.messages_sent;
        metrics.messages_dropped = stats.messages_dropped;
        metrics.messages_duplicated = stats.messages_duplicated;
        metrics.messages_reordered = stats.messages_reordered;
        metrics.messages_retransmitted = stats.messages_retransmitted;
        metrics.max_delivery_delay = stats.max_delivery_delay;

        let in_flight = net.queued();
        net.sink().record(TraceEvent::RunEnd {
            cycle: metrics.cycles,
            runtime: RuntimeKind::Sharded,
            in_flight,
            metrics: metrics.clone(),
        });

        let solution = if termination == Termination::Solved {
            Some(snapshot)
        } else {
            None
        };
        Ok(VirtualReport {
            outcome: TrialOutcome { metrics, solution },
            ticks: tick,
            activations,
            nudges,
            fault_log: net.fault_log(),
            trace: net.take_trace(),
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::{run_virtual, LinkPolicy};
    use crate::message::{Classify, MessageClass};
    use crate::PPM;
    use discsp_core::{AgentId, Domain, Nogood, Value, VariableId};

    /// Max-gossip agents on a ring (the same protocol as the virtual
    /// runtime's unit tests): everyone must end up holding `true`.
    #[derive(Debug, Clone)]
    struct Gossip(Value);

    impl Classify for Gossip {
        fn class(&self) -> MessageClass {
            MessageClass::Ok
        }
    }

    struct RingAgent {
        id: AgentId,
        n: usize,
        value: Value,
    }

    impl RingAgent {
        fn next(&self) -> AgentId {
            AgentId::new(((self.id.index() + 1) % self.n) as u32)
        }
    }

    impl DistributedAgent for RingAgent {
        type Message = Gossip;

        fn id(&self) -> AgentId {
            self.id
        }

        fn on_start(&mut self, out: &mut Outbox<Gossip>) {
            out.send(self.next(), Gossip(self.value));
        }

        fn on_batch(&mut self, inbox: Vec<Envelope<Gossip>>, out: &mut Outbox<Gossip>) {
            let mut changed = false;
            for env in inbox {
                if env.payload.0 > self.value {
                    self.value = env.payload.0;
                    changed = true;
                }
            }
            if changed {
                out.send(self.next(), Gossip(self.value));
            }
        }

        fn on_nudge(&mut self, out: &mut Outbox<Gossip>) {
            out.send(self.next(), Gossip(self.value));
        }

        fn assignments(&self) -> Vec<VarValue> {
            vec![VarValue::new(VariableId::new(self.id.raw()), self.value)]
        }

        fn take_checks(&mut self) -> u64 {
            0
        }

        fn stats(&self) -> AgentStats {
            AgentStats::default()
        }
    }

    fn all_true_problem(n: usize) -> DistributedCsp {
        let mut b = DistributedCsp::builder();
        let vars: Vec<_> = (0..n).map(|_| b.variable(Domain::BOOL)).collect();
        for &v in &vars {
            b.nogood(Nogood::of([(v, Value::FALSE)])).unwrap();
        }
        b.build().unwrap()
    }

    fn ring(n: usize) -> Vec<RingAgent> {
        (0..n)
            .map(|i| RingAgent {
                id: AgentId::new(i as u32),
                n,
                value: Value::from_bool(i == 0),
            })
            .collect()
    }

    fn strip_run_end(trace: &[TraceEvent]) -> Vec<TraceEvent> {
        trace
            .iter()
            .filter(|e| !matches!(e, TraceEvent::RunEnd { .. }))
            .cloned()
            .collect()
    }

    #[test]
    fn sharded_run_matches_run_virtual_bit_for_bit() {
        // The golden contract: same (agents, problem, base config) ⇒
        // the sharded executor reproduces run_virtual exactly — metrics,
        // fault counters, fault log, and the full trace modulo the
        // RunEnd runtime stamp — for every worker count.
        let problem = all_true_problem(9);
        for seed in 0..6u64 {
            let base = VirtualConfig {
                seed,
                link: LinkPolicy::lossy(200_000)
                    .with_duplication(100_000)
                    .with_delay(0, 3)
                    .with_reordering(2),
                record_trace: true,
                ..VirtualConfig::default()
            };
            let reference = run_virtual(ring(9), &problem, &base).expect("virtual runs");
            for workers in [1usize, 2, 4, 8] {
                let config = ShardConfig::with_base(base.clone(), workers);
                let sharded = run_sharded(ring(9), &problem, &config).expect("sharded runs");
                assert_eq!(
                    sharded.outcome.metrics, reference.outcome.metrics,
                    "seed {seed} workers {workers}: metrics"
                );
                assert_eq!(sharded.outcome.solution, reference.outcome.solution);
                assert_eq!(sharded.ticks, reference.ticks);
                assert_eq!(sharded.activations, reference.activations);
                assert_eq!(sharded.nudges, reference.nudges);
                assert_eq!(sharded.fault_log, reference.fault_log);
                assert_eq!(
                    strip_run_end(&sharded.trace),
                    strip_run_end(&reference.trace),
                    "seed {seed} workers {workers}: trace"
                );
            }
        }
    }

    #[test]
    fn sharded_run_end_carries_the_sharded_stamp() {
        let problem = all_true_problem(4);
        let config = ShardConfig {
            base: VirtualConfig {
                record_trace: true,
                ..VirtualConfig::default()
            },
            workers: 2,
        };
        let report = run_sharded(ring(4), &problem, &config).expect("runs");
        assert!(report.trace.iter().any(|e| matches!(
            e,
            TraceEvent::RunEnd {
                runtime: RuntimeKind::Sharded,
                ..
            }
        )));
        let audit = discsp_trace::audit(&report.trace).expect("sealed trace");
        assert!(audit.passed(), "audit failures: {:?}", audit.failures);
        assert_eq!(audit.metrics, report.outcome.metrics);
    }

    #[test]
    fn fully_parked_system_recovers_via_nudges() {
        // Every link drops everything, so after the start wave every
        // shard's traffic is parked and the queue is empty. That state
        // must surface as a recoverable stall (retransmission flush +
        // nudge wave), not a deadlock — on any worker count.
        let problem = all_true_problem(6);
        for workers in [1usize, 3, 6] {
            let config = ShardConfig {
                base: VirtualConfig {
                    seed: 3,
                    link: LinkPolicy::lossy(PPM),
                    ..VirtualConfig::default()
                },
                workers,
            };
            let report = run_sharded(ring(6), &problem, &config).expect("runs");
            assert_eq!(
                report.outcome.metrics.termination,
                Termination::Solved,
                "workers {workers}"
            );
            assert!(report.nudges > 0, "workers {workers}: recovery must fire");
            let m = &report.outcome.metrics;
            assert_eq!(m.messages_dropped, m.messages_sent);
            assert_eq!(
                m.total_messages(),
                m.messages_sent - m.messages_dropped
                    + m.messages_duplicated
                    + m.messages_retransmitted,
                "workers {workers}: conservation"
            );
        }
    }

    #[test]
    fn sharded_run_rejects_unknown_recipient() {
        struct Misrouter;
        impl DistributedAgent for Misrouter {
            type Message = Gossip;
            fn id(&self) -> AgentId {
                AgentId::new(0)
            }
            fn on_start(&mut self, out: &mut Outbox<Gossip>) {
                out.send(AgentId::new(99), Gossip(Value::TRUE));
            }
            fn on_batch(&mut self, _: Vec<Envelope<Gossip>>, _: &mut Outbox<Gossip>) {}
            fn assignments(&self) -> Vec<VarValue> {
                Vec::new()
            }
            fn take_checks(&mut self) -> u64 {
                0
            }
            fn stats(&self) -> AgentStats {
                AgentStats::default()
            }
        }
        let problem = all_true_problem(1);
        let err = run_sharded(vec![Misrouter], &problem, &ShardConfig::new(2));
        assert_eq!(
            err.unwrap_err(),
            RuntimeError::UnknownRecipient {
                agent: AgentId::new(99)
            }
        );
    }

    #[test]
    fn degenerate_worker_counts_are_clamped() {
        let problem = all_true_problem(3);
        for workers in [0usize, 1, 64] {
            let report = run_sharded(ring(3), &problem, &ShardConfig::new(workers))
                .expect("runs on any worker count");
            assert_eq!(report.outcome.metrics.termination, Termination::Solved);
        }
    }
}
