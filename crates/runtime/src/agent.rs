//! The agent abstraction shared by both runtimes.

use discsp_core::{AgentId, VarValue};
use serde::{Deserialize, Serialize};

use crate::message::{Classify, Envelope, MessageClass};

/// Outbound mailbox handed to an agent while it computes.
///
/// Agents queue messages here; the runtime takes them when the agent's
/// turn ends and delivers them according to its own timing model (next
/// cycle for the synchronous simulator, channel latency for the
/// asynchronous runtime).
#[derive(Debug)]
pub struct Outbox<M> {
    from: AgentId,
    queued: Vec<Envelope<M>>,
}

impl<M: Classify> Outbox<M> {
    /// Creates an empty outbox for the agent `from`.
    pub fn new(from: AgentId) -> Self {
        Outbox {
            from,
            queued: Vec::new(),
        }
    }

    /// Queues `payload` for delivery to `to`.
    pub fn send(&mut self, to: AgentId, payload: M) {
        self.queued.push(Envelope::new(self.from, to, payload));
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.queued.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queued.is_empty()
    }

    /// Takes the queued messages, leaving the outbox empty.
    pub fn drain(&mut self) -> Vec<Envelope<M>> {
        std::mem::take(&mut self.queued)
    }

    /// Counts queued messages per class (used by the runtimes' metering).
    pub fn count_by_class(&self) -> (u64, u64, u64) {
        let mut ok = 0;
        let mut nogood = 0;
        let mut other = 0;
        for env in &self.queued {
            match env.payload.class() {
                MessageClass::Ok => ok += 1,
                MessageClass::Nogood => nogood += 1,
                MessageClass::Other => other += 1,
            }
        }
        (ok, nogood, other)
    }
}

/// Per-agent learning and link-fault statistics reported to the runtimes.
///
/// The fault counters are filled in by the runtime that owns the agent's
/// outgoing links (faults are injected sender-side), not by the agent
/// itself; agent implementations leave them zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AgentStats {
    /// Nogoods generated at deadends (before any deduplication).
    pub nogoods_generated: u64,
    /// Generated nogoods identical to one this agent generated before
    /// (Table 4's redundancy measure).
    pub redundant_nogoods: u64,
    /// Size of the largest nogood generated.
    pub largest_nogood: u64,
    /// Messages this agent handed to the link layer.
    pub messages_sent: u64,
    /// Outgoing messages dropped by an injected fault.
    pub messages_dropped: u64,
    /// Extra outgoing copies created by an injected duplication fault.
    pub messages_duplicated: u64,
    /// Outgoing messages assigned a delivery tick that overtakes an
    /// earlier message on the same link.
    pub messages_reordered: u64,
    /// Dropped outgoing messages re-enqueued by the recovery pass.
    pub messages_retransmitted: u64,
    /// Largest delivery delay assigned to one of this agent's messages,
    /// in virtual ticks.
    pub max_delivery_delay: u64,
}

impl AgentStats {
    /// Accumulates another agent's statistics into this one.
    pub fn absorb(&mut self, other: AgentStats) {
        self.nogoods_generated += other.nogoods_generated;
        self.redundant_nogoods += other.redundant_nogoods;
        self.largest_nogood = self.largest_nogood.max(other.largest_nogood);
        self.messages_sent += other.messages_sent;
        self.messages_dropped += other.messages_dropped;
        self.messages_duplicated += other.messages_duplicated;
        self.messages_reordered += other.messages_reordered;
        self.messages_retransmitted += other.messages_retransmitted;
        self.max_delivery_delay = self.max_delivery_delay.max(other.max_delivery_delay);
    }
}

/// A noteworthy agent-local event surfaced to the trace pipeline.
///
/// Agents accumulate notes during a step; the runtimes drain them via
/// [`DistributedAgent::drain_notes`] right after each activation and
/// convert them to trace events. Runtimes drain unconditionally (even
/// with tracing off) so the backlog cannot grow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AgentNote {
    /// The agent generated a new nogood of `size` elements.
    NogoodLearned {
        /// Element count of the learned nogood.
        size: u64,
    },
    /// The agent's forgetting pass evicted `count` learned nogoods.
    NogoodsForgotten {
        /// How many learned nogoods were evicted.
        count: u64,
    },
}

/// A message-driven DisCSP agent, executable on either runtime.
///
/// The contract mirrors the paper's synchronous cycle (§4): the runtime
/// hands the agent *all* messages that arrived since its last turn, the
/// agent updates its state and queues outgoing messages. The asynchronous
/// runtime calls [`DistributedAgent::on_batch`] with whatever has drained
/// from the agent's channel, which may be a single message.
pub trait DistributedAgent {
    /// The algorithm's message type.
    type Message: Classify + Clone + Send + 'static;

    /// This agent's identity.
    fn id(&self) -> AgentId;

    /// Called once before any message flows; typically announces the
    /// initial value with `ok?` messages.
    fn on_start(&mut self, out: &mut Outbox<Self::Message>);

    /// Called with the messages received since the previous turn.
    fn on_batch(&mut self, inbox: Vec<Envelope<Self::Message>>, out: &mut Outbox<Self::Message>);

    /// The agent's current variable assignments (one entry per owned
    /// variable), used by the observer to detect solutions.
    fn assignments(&self) -> Vec<VarValue>;

    /// Returns and resets the nogood checks performed since the last call
    /// (feeds the `maxcck` metric).
    fn take_checks(&mut self) -> u64;

    /// Current learning statistics (monotonically growing).
    fn stats(&self) -> AgentStats;

    /// Whether this agent has derived the empty nogood, proving the
    /// problem insoluble.
    fn detected_insoluble(&self) -> bool {
        false
    }

    /// Called by a runtime when the system has gone quiet without a
    /// solution: the agent may re-announce its current state (an
    /// idempotent refresh) to repair views staled by lost or reordered
    /// traffic, and re-evaluate any decision it suppressed on the
    /// assumption that earlier messages were still in flight (AWC's
    /// repeated-nogood rule) — after a detected stall that assumption no
    /// longer holds. The default does nothing — protocols that already
    /// tolerate silence need no refresh.
    fn on_nudge(&mut self, out: &mut Outbox<Self::Message>) {
        let _ = out;
    }

    /// The agent's current priority, if the algorithm has one (AWC's
    /// dynamic ordering). Used by the shared step recorder to emit
    /// `PriorityChanged` trace events; `None` disables them.
    fn current_priority(&self) -> Option<u64> {
        None
    }

    /// Takes the notes accumulated since the last call (learned nogoods,
    /// …). The default returns nothing — algorithms without noteworthy
    /// local events need not implement it.
    fn drain_notes(&mut self) -> Vec<AgentNote> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MessageClass;

    #[derive(Debug, Clone)]
    enum Msg {
        Hello,
        Learned,
    }

    impl Classify for Msg {
        fn class(&self) -> MessageClass {
            match self {
                Msg::Hello => MessageClass::Ok,
                Msg::Learned => MessageClass::Nogood,
            }
        }
    }

    #[test]
    fn outbox_queues_and_drains() {
        let mut out = Outbox::new(AgentId::new(0));
        assert!(out.is_empty());
        out.send(AgentId::new(1), Msg::Hello);
        out.send(AgentId::new(2), Msg::Learned);
        assert_eq!(out.len(), 2);
        assert_eq!(out.count_by_class(), (1, 1, 0));
        let drained = out.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].from, AgentId::new(0));
        assert!(out.is_empty());
    }

    #[test]
    fn stats_absorb_accumulates() {
        let mut total = AgentStats::default();
        total.absorb(AgentStats {
            nogoods_generated: 3,
            redundant_nogoods: 1,
            largest_nogood: 4,
            messages_sent: 10,
            messages_dropped: 2,
            max_delivery_delay: 7,
            ..AgentStats::default()
        });
        total.absorb(AgentStats {
            nogoods_generated: 2,
            redundant_nogoods: 0,
            largest_nogood: 2,
            messages_sent: 5,
            messages_duplicated: 1,
            max_delivery_delay: 3,
            ..AgentStats::default()
        });
        assert_eq!(total.nogoods_generated, 5);
        assert_eq!(total.redundant_nogoods, 1);
        assert_eq!(total.largest_nogood, 4);
        assert_eq!(total.messages_sent, 15);
        assert_eq!(total.messages_dropped, 2);
        assert_eq!(total.messages_duplicated, 1);
        assert_eq!(total.max_delivery_delay, 7, "delay absorbs by max");
    }
}
