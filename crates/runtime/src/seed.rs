//! Deterministic seed derivation.
//!
//! Experiments derive one seed per (instance, trial) pair from a master
//! seed so that every table row is reproducible independently of execution
//! order. The generator is SplitMix64 — tiny, well-distributed, and
//! dependency-free.

/// A SplitMix64 pseudo-random stream.
///
/// # Examples
///
/// ```
/// use discsp_runtime::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a stream seeded with `seed`.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a value uniformly below `bound` (`bound` must be nonzero).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be nonzero");
        // Rejection-free multiply-shift; adequate for simulation jitter and
        // seed mixing (not for statistics-critical sampling, which uses
        // `rand` in `discsp-probgen`).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Derives a child seed for a named experiment stream.
///
/// Mixing is injective enough that distinct `(instance, trial)` pairs get
/// unrelated streams.
///
/// # Examples
///
/// ```
/// use discsp_runtime::derive_seed;
///
/// let s1 = derive_seed(7, 0, 1);
/// let s2 = derive_seed(7, 1, 0);
/// assert_ne!(s1, s2);
/// ```
pub fn derive_seed(master: u64, instance: u64, trial: u64) -> u64 {
    let mut sm = SplitMix64::new(master ^ instance.wrapping_mul(0xA24B_AED4_963E_E407));
    sm.next_u64() ^ trial.wrapping_mul(0x9FB2_1C65_1E98_DF25)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_respects_bound() {
        let mut sm = SplitMix64::new(99);
        for _ in 0..1000 {
            assert!(sm.next_below(10) < 10);
        }
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_bound_panics() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    fn derive_seed_separates_instances_and_trials() {
        let mut seen = std::collections::HashSet::new();
        for instance in 0..20 {
            for trial in 0..20 {
                assert!(seen.insert(derive_seed(42, instance, trial)));
            }
        }
    }

    #[test]
    fn splitmix_distribution_rough_uniformity() {
        // Coarse sanity check: bucket 10k outputs into 16 buckets; every
        // bucket should be populated within a loose tolerance.
        let mut sm = SplitMix64::new(123);
        let mut buckets = [0u32; 16];
        for _ in 0..10_000 {
            buckets[(sm.next_u64() >> 60) as usize] += 1;
        }
        for &b in &buckets {
            assert!(b > 400 && b < 900, "bucket count {b} out of range");
        }
    }
}
