//! The synchronous distributed-system simulator used for all measurements.
//!
//! §4 of the paper: "A synchronous distributed system is one of possible
//! distributed systems, where all processes (agents) do their cycles
//! synchronously. One cycle consists of activities so that all agents read
//! incoming messages, do their local computation, and send messages to
//! relevant agents." Messages sent during cycle *k* are readable in cycle
//! *k + 1*. An omniscient observer (the simulator itself) detects the first
//! cycle whose global assignment solves the problem.

use discsp_core::{
    Assignment, DistributedCsp, RunMetrics, Termination, TrialOutcome, PAPER_CYCLE_LIMIT,
};
use serde::{Deserialize, Serialize};

use discsp_trace::{RingBuffer, RuntimeKind, TraceEvent, TraceSink};

use crate::agent::{AgentStats, DistributedAgent, Outbox};
use crate::error::RuntimeError;
use crate::message::{Classify, Envelope};
use crate::recorder::StepRecorder;
use crate::seed::SplitMix64;

/// One cycle's bookkeeping, collected when history recording is enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleRecord {
    /// 1-based cycle number.
    pub cycle: u64,
    /// Maximum nogood checks by any single agent in this cycle.
    pub max_checks: u64,
    /// Total nogood checks over all agents in this cycle.
    pub total_checks: u64,
    /// Messages sent during this cycle.
    pub messages: u64,
    /// Nogoods violated by the global assignment after this cycle.
    pub violations: u64,
}

/// Result of a synchronous run: the trial outcome plus optional per-cycle
/// history and event trace.
#[derive(Debug, Clone)]
pub struct SyncRun {
    /// Metrics and solution.
    pub outcome: TrialOutcome,
    /// Per-cycle records; empty unless history recording was enabled.
    pub history: Vec<CycleRecord>,
    /// Event log; empty unless trace recording was enabled.
    pub trace: Vec<TraceEvent>,
}

/// The synchronous cycle simulator.
///
/// Owns the agents (one per [`discsp_core::AgentId`], densely indexed) and
/// drives them cycle by cycle until a solution is observed, the empty
/// nogood proves insolubility, or the cycle limit cuts the trial off.
///
/// # Examples
///
/// See `discsp-awc`'s `solve_sync` for the intended usage; the simulator is
/// algorithm-agnostic and works for any [`DistributedAgent`].
#[derive(Debug)]
pub struct SyncSimulator<A: DistributedAgent> {
    agents: Vec<A>,
    cycle_limit: u64,
    record_history: bool,
    record_trace: bool,
    /// Extra delivery delay: each message arrives after `1 + U(0..=d)`
    /// cycles instead of exactly one. Zero restores the paper's setting.
    max_extra_delay: u64,
    delay_seed: u64,
}

impl<A: DistributedAgent> SyncSimulator<A> {
    /// Creates a simulator over `agents` with the paper's 10 000-cycle
    /// limit.
    ///
    /// The population must be densely indexed — agent *i* reporting id
    /// *i* — because the simulator routes messages by index; [`run`]
    /// reports a [`RuntimeError`] otherwise.
    ///
    /// [`run`]: SyncSimulator::run
    pub fn new(agents: Vec<A>) -> Self {
        SyncSimulator {
            agents,
            cycle_limit: PAPER_CYCLE_LIMIT,
            record_history: false,
            record_trace: false,
            max_extra_delay: 0,
            delay_seed: 0,
        }
    }

    /// Overrides the cycle limit (the paper uses 10 000).
    pub fn cycle_limit(&mut self, limit: u64) -> &mut Self {
        self.cycle_limit = limit;
        self
    }

    /// Enables per-cycle history recording.
    pub fn record_history(&mut self, on: bool) -> &mut Self {
        self.record_history = on;
        self
    }

    /// Enables event-trace recording (message deliveries and variable
    /// changes); see [`crate::render_trace`].
    pub fn record_trace(&mut self, on: bool) -> &mut Self {
        self.record_trace = on;
        self
    }

    /// Makes message delivery take `1 + U(0..=max_extra)` cycles instead
    /// of exactly one — the paper's §5 "other types of distributed
    /// systems". Delays are drawn deterministically from `seed`, per
    /// message. The algorithms are designed for full asynchrony, so they
    /// must still terminate correctly (tests assert this).
    pub fn message_delay(&mut self, max_extra: u64, seed: u64) -> &mut Self {
        self.max_extra_delay = max_extra;
        self.delay_seed = seed;
        self
    }

    /// Read access to the agents (e.g. to inspect learned nogoods after a
    /// run).
    pub fn agents(&self) -> &[A] {
        &self.agents
    }

    /// Runs the algorithm against `problem` until termination.
    ///
    /// Returns the trial outcome; metrics follow the paper's definitions
    /// (`cycles`, `maxcck` = Σ per-cycle max agent checks).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::NonDenseAgentIds`] when the population is not
    /// densely indexed, [`RuntimeError::UnknownRecipient`] when an agent
    /// addresses a message outside the population.
    pub fn run(&mut self, problem: &DistributedCsp) -> Result<SyncRun, RuntimeError> {
        let n = self.agents.len();
        for (position, agent) in self.agents.iter().enumerate() {
            if agent.id().index() != position {
                return Err(RuntimeError::NonDenseAgentIds {
                    position,
                    found: agent.id(),
                });
            }
        }
        // Messages tagged with their delivery cycle (normally the next
        // one; later under a message-delay model).
        let mut pending: Vec<(u64, Envelope<A::Message>)> = Vec::new();
        let mut delay_rng = SplitMix64::new(self.delay_seed);
        let mut metrics = RunMetrics::new(Termination::CutOff);
        let mut history = Vec::new();

        let mut cycle: u64 = 0;
        let mut solution: Option<Assignment> = None;
        let mut sink = if self.record_trace {
            RingBuffer::new()
        } else {
            RingBuffer::disabled()
        };
        let mut recorder = StepRecorder::new();

        loop {
            cycle += 1;
            let mut cycle_messages = 0u64;

            // Distribute the messages due this cycle into per-agent
            // inboxes.
            let mut inboxes: Vec<Vec<Envelope<A::Message>>> = (0..n).map(|_| Vec::new()).collect();
            let mut routing_error = None;
            pending.retain(|(deliver_at, env)| {
                if *deliver_at <= cycle {
                    let to = env.to.index();
                    if to >= n {
                        routing_error = Some(env.to);
                        return false;
                    }
                    if sink.enabled() {
                        sink.record(TraceEvent::Delivered {
                            cycle,
                            from: env.from,
                            to: env.to,
                            class: env.payload.class(),
                        });
                    }
                    inboxes[to].push(env.clone());
                    false
                } else {
                    true
                }
            });
            if let Some(agent) = routing_error {
                return Err(RuntimeError::UnknownRecipient { agent });
            }

            // All agents act "simultaneously": each reads its inbox and
            // queues sends, which are delivered next cycle (or later
            // under a delay model). Checks are drained per step — each
            // agent's counter is only touched by its own activation, so
            // draining inside the loop is equivalent to the old post-loop
            // sweep and lets the shared recorder stamp the step's count.
            let mut max_checks = 0u64;
            let mut total_checks = 0u64;
            for (i, agent) in self.agents.iter_mut().enumerate() {
                let mut out = Outbox::new(agent.id());
                if cycle == 1 {
                    agent.on_start(&mut out);
                } else {
                    let inbox = std::mem::take(&mut inboxes[i]);
                    agent.on_batch(inbox, &mut out);
                }
                let checks = agent.take_checks();
                max_checks = max_checks.max(checks);
                total_checks += checks;
                recorder.record_step(agent, cycle, checks, &mut sink);
                let (ok, nogood, other) = out.count_by_class();
                metrics.ok_messages += ok;
                metrics.nogood_messages += nogood;
                metrics.other_messages += other;
                cycle_messages += ok + nogood + other;
                for env in out.drain() {
                    if sink.enabled() {
                        sink.record(TraceEvent::Sent {
                            cycle,
                            from: env.from,
                            to: env.to,
                            class: env.payload.class(),
                        });
                    }
                    let extra = if self.max_extra_delay > 0 {
                        delay_rng.next_below(self.max_extra_delay + 1)
                    } else {
                        0
                    };
                    pending.push((cycle + 1 + extra, env));
                }
            }
            metrics.maxcck += max_checks;
            metrics.total_checks += total_checks;
            sink.record(TraceEvent::CycleBarrier { cycle });

            // Omniscient observation: does the global state solve the
            // problem?
            let mut assignment = Assignment::empty(problem.num_vars());
            for agent in &self.agents {
                for vv in agent.assignments() {
                    assignment.set(vv.var, vv.value);
                }
            }
            let solved = problem.is_solution(&assignment);
            if self.record_history {
                history.push(CycleRecord {
                    cycle,
                    max_checks,
                    total_checks,
                    messages: cycle_messages,
                    violations: problem.violation_count(assignment.lookup()) as u64,
                });
            }
            if solved {
                metrics.termination = Termination::Solved;
                solution = Some(assignment);
                break;
            }
            if self.agents.iter().any(|a| a.detected_insoluble()) {
                metrics.termination = Termination::Insoluble;
                break;
            }
            if cycle >= self.cycle_limit {
                metrics.termination = Termination::CutOff;
                break;
            }
        }

        metrics.cycles = cycle;
        let mut stats = AgentStats::default();
        for agent in &self.agents {
            stats.absorb(agent.stats());
        }
        metrics.nogoods_generated = stats.nogoods_generated;
        metrics.redundant_nogoods = stats.redundant_nogoods;
        metrics.largest_nogood = stats.largest_nogood;
        // The simulator's links are perfect: every emitted message is
        // delivered, so sent equals the class totals exactly.
        metrics.messages_sent = metrics.total_messages();

        // Messages still pending when the run ends (sent in the final
        // cycle, or scheduled further out by a delay model) are the
        // in-flight set the audit subtracts from the delivery count.
        sink.record(TraceEvent::RunEnd {
            cycle: metrics.cycles,
            runtime: RuntimeKind::Sync,
            in_flight: pending.len() as u64,
            metrics: metrics.clone(),
        });

        Ok(SyncRun {
            outcome: TrialOutcome { metrics, solution },
            history,
            trace: sink.take(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Classify, MessageClass};
    use discsp_core::{AgentId, Domain, Value, VarValue, VariableId};

    /// A toy protocol: each agent owns one Boolean variable and copies the
    /// value announced by agent 0, so everyone converges to agreement —
    /// the test problem *requires* disagreement-free equality.
    #[derive(Debug, Clone)]
    struct Announce(Value);

    impl Classify for Announce {
        fn class(&self) -> MessageClass {
            MessageClass::Ok
        }
    }

    struct Follower {
        id: AgentId,
        value: Value,
        peers: usize,
        checks_this_turn: u64,
    }

    impl DistributedAgent for Follower {
        type Message = Announce;

        fn id(&self) -> AgentId {
            self.id
        }

        fn on_start(&mut self, out: &mut Outbox<Announce>) {
            if self.id.index() == 0 {
                for p in 1..self.peers {
                    out.send(AgentId::new(p as u32), Announce(self.value));
                }
            }
        }

        fn on_batch(&mut self, inbox: Vec<Envelope<Announce>>, _out: &mut Outbox<Announce>) {
            for env in inbox {
                self.value = env.payload.0;
                self.checks_this_turn += 1;
            }
        }

        fn assignments(&self) -> Vec<VarValue> {
            vec![VarValue::new(VariableId::new(self.id.raw()), self.value)]
        }

        fn take_checks(&mut self) -> u64 {
            std::mem::take(&mut self.checks_this_turn)
        }

        fn stats(&self) -> AgentStats {
            AgentStats::default()
        }
    }

    /// All-equal problem: every adjacent pair must agree (prohibit
    /// differing values pairwise).
    fn all_equal_problem(n: usize) -> DistributedCsp {
        let mut b = DistributedCsp::builder();
        let vars: Vec<_> = (0..n).map(|_| b.variable(Domain::new(2))).collect();
        for w in vars.windows(2) {
            for a in 0..2u16 {
                for c in 0..2u16 {
                    if a != c {
                        b.nogood(discsp_core::Nogood::of([
                            (w[0], Value::new(a)),
                            (w[1], Value::new(c)),
                        ]))
                        .unwrap();
                    }
                }
            }
        }
        b.build().unwrap()
    }

    fn followers(n: usize) -> Vec<Follower> {
        (0..n)
            .map(|i| Follower {
                id: AgentId::new(i as u32),
                // Agent 0 starts at 1, everyone else at 0: disagreement.
                value: Value::new(if i == 0 { 1 } else { 0 }),
                peers: n,
                checks_this_turn: 0,
            })
            .collect()
    }

    #[test]
    fn converges_and_counts_cycles() {
        let problem = all_equal_problem(4);
        let mut sim = SyncSimulator::new(followers(4));
        let run = sim.run(&problem).expect("runs");
        let m = &run.outcome.metrics;
        assert_eq!(m.termination, Termination::Solved);
        // Cycle 1: agent 0 announces. Cycle 2: others adopt → solved.
        assert_eq!(m.cycles, 2);
        assert_eq!(m.ok_messages, 3);
        let sol = run.outcome.solution.as_ref().unwrap();
        assert!(problem.is_solution(sol));
        assert_eq!(sol.get(VariableId::new(3)), Some(Value::new(1)));
    }

    #[test]
    fn maxcck_takes_per_cycle_maximum() {
        let problem = all_equal_problem(4);
        let mut sim = SyncSimulator::new(followers(4));
        let run = sim.run(&problem).expect("runs");
        // Cycle 1: zero checks anywhere. Cycle 2: each follower "checks"
        // once (toy accounting), so the per-cycle max is 1.
        assert_eq!(run.outcome.metrics.maxcck, 1);
        assert_eq!(run.outcome.metrics.total_checks, 3);
    }

    #[test]
    fn cutoff_hits_limit() {
        // Agent 0 never announces because peers == 1 (no recipients), so
        // the 2-agent system can never agree.
        let problem = all_equal_problem(2);
        let mut agents = followers(2);
        agents[0].peers = 1;
        let mut sim = SyncSimulator::new(agents);
        sim.cycle_limit(50);
        let run = sim.run(&problem).expect("runs");
        assert_eq!(run.outcome.metrics.termination, Termination::CutOff);
        assert_eq!(run.outcome.metrics.cycles, 50);
        assert!(run.outcome.solution.is_none());
    }

    #[test]
    fn history_records_each_cycle() {
        let problem = all_equal_problem(3);
        let mut sim = SyncSimulator::new(followers(3));
        sim.record_history(true);
        let run = sim.run(&problem).expect("runs");
        assert_eq!(run.history.len(), run.outcome.metrics.cycles as usize);
        assert_eq!(run.history[0].cycle, 1);
        // Final cycle has zero violations (solved).
        assert_eq!(run.history.last().unwrap().violations, 0);
    }

    #[test]
    fn misordered_agents_rejected() {
        let problem = all_equal_problem(2);
        let mut agents = followers(2);
        agents.swap(0, 1);
        let err = SyncSimulator::new(agents).run(&problem).unwrap_err();
        assert_eq!(
            err,
            crate::RuntimeError::NonDenseAgentIds {
                position: 0,
                found: AgentId::new(1),
            }
        );
    }

    #[test]
    fn unknown_recipient_reported_not_panicked() {
        // Agent 0 believes there are 5 peers, but only 2 exist: its
        // start-up announcements address agents outside the population.
        let problem = all_equal_problem(2);
        let mut agents = followers(2);
        agents[0].peers = 5;
        let err = SyncSimulator::new(agents).run(&problem).unwrap_err();
        assert!(matches!(err, crate::RuntimeError::UnknownRecipient { .. }));
    }

    #[test]
    fn message_delay_slows_but_preserves_convergence() {
        let problem = all_equal_problem(4);
        let mut baseline = SyncSimulator::new(followers(4));
        let base = baseline.run(&problem).expect("runs");
        assert_eq!(base.outcome.metrics.cycles, 2);

        let mut delayed = SyncSimulator::new(followers(4));
        delayed.message_delay(5, 99);
        let run = delayed.run(&problem).expect("runs");
        assert_eq!(run.outcome.metrics.termination, Termination::Solved);
        assert!(
            run.outcome.metrics.cycles >= base.outcome.metrics.cycles,
            "delay cannot make delivery faster"
        );
        // With a max extra delay of 5, everything lands by cycle 7.
        assert!(run.outcome.metrics.cycles <= 7);
    }

    #[test]
    fn message_delay_is_deterministic_per_seed() {
        let problem = all_equal_problem(4);
        let run_with = |seed: u64| {
            let mut sim = SyncSimulator::new(followers(4));
            sim.message_delay(4, seed);
            sim.run(&problem).expect("runs").outcome.metrics.cycles
        };
        assert_eq!(run_with(3), run_with(3));
    }

    #[test]
    fn sync_trace_passes_the_audit() {
        let problem = all_equal_problem(4);
        let mut sim = SyncSimulator::new(followers(4));
        sim.record_trace(true).message_delay(3, 7);
        let run = sim.run(&problem).expect("runs");
        let audit = discsp_trace::audit(&run.trace).expect("trace is sealed by RunEnd");
        assert!(audit.passed(), "audit failures: {:?}", audit.failures);
        assert_eq!(audit.metrics, run.outcome.metrics);
        assert!(
            run.trace
                .iter()
                .any(|e| matches!(e, TraceEvent::ValueChanged { .. })),
            "the shared recorder emits value changes"
        );
        assert!(
            run.trace
                .iter()
                .any(|e| matches!(e, TraceEvent::Sent { .. })),
            "sends are traced at emission time"
        );
    }

    #[test]
    fn instantly_solved_problem_takes_one_cycle() {
        let problem = all_equal_problem(3);
        let mut agents = followers(3);
        for a in &mut agents {
            a.value = Value::new(1); // already agreeing
        }
        let mut sim = SyncSimulator::new(agents);
        let run = sim.run(&problem).expect("runs");
        assert_eq!(run.outcome.metrics.cycles, 1);
        assert_eq!(run.outcome.metrics.termination, Termination::Solved);
    }
}
