//! Scriptable per-event fault schedules.
//!
//! A [`LinkPolicy`](crate::LinkPolicy) describes faults *statistically*:
//! each link draws drop/dup/delay decisions from its private seeded
//! stream, so a run is replayable from `(seed, policy)` but an individual
//! fault cannot be moved or removed without perturbing every later draw.
//! A [`FaultSchedule`] is the exact complement: an explicit list of
//! "the *k*-th message on link `from → to` is dropped / delayed /
//! duplicated" events, with every unlisted message delivered perfectly.
//! Because events are addressed by per-link call index rather than by
//! stream position, deleting one event leaves all others intact — which
//! is precisely what delta-debugging a failing schedule requires.
//!
//! Every faulty run records the faults it actually injected as a
//! [`FaultSchedule`] (see `VirtualReport::fault_log`), so a failure first
//! observed under a probabilistic policy can be re-run scripted,
//! minimized event by event, and committed as a text fixture that
//! replays bit-identically with no RNG involved.

use std::collections::BTreeMap;
use std::fmt;

use discsp_core::AgentId;

/// What happens to one message (or retransmission) on its link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultAction {
    /// The message is dropped (and parked for stall-recovery
    /// retransmission, as under a lossy [`LinkPolicy`](crate::LinkPolicy)).
    Drop,
    /// The message is delivered after the given extra delay in ticks.
    Delay(u64),
    /// The message is duplicated; the two copies are delivered after the
    /// given extra delays in ticks.
    Duplicate {
        /// Extra delay of the original copy.
        first: u64,
        /// Extra delay of the duplicate copy.
        second: u64,
    },
}

impl fmt::Display for FaultAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultAction::Drop => write!(f, "drop"),
            FaultAction::Delay(d) => write!(f, "delay {d}"),
            FaultAction::Duplicate { first, second } => write!(f, "dup {first} {second}"),
        }
    }
}

/// One scripted fault: the `call`-th message offered to the directed
/// link `from → to` (counting both fresh sends and retransmissions,
/// 0-based) suffers `action`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct FaultEvent {
    /// Sending agent of the affected link.
    pub from: AgentId,
    /// Receiving agent of the affected link.
    pub to: AgentId,
    /// 0-based index of the affected link call (sends and
    /// retransmissions share one counter per link).
    pub call: u64,
    /// The injected fault.
    pub action: FaultAction,
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {} @{} {}",
            self.from.raw(),
            self.to.raw(),
            self.call,
            self.action
        )
    }
}

/// A parse failure in the [`FaultSchedule`] text format, with the
/// offending 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleParseError {
    /// 1-based line number of the bad line.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl fmt::Display for ScheduleParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "schedule line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ScheduleParseError {}

/// An explicit, replayable list of per-link fault events.
///
/// Canonically sorted by `(from, to, call)`; at most one event per link
/// call (later duplicates are discarded on construction). The empty
/// schedule delivers every message perfectly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// Builds a schedule from `events`, sorting canonically and keeping
    /// the first event listed for any `(from, to, call)` slot.
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| (e.from, e.to, e.call, e.action));
        events.dedup_by_key(|e| (e.from, e.to, e.call));
        FaultSchedule { events }
    }

    /// The events, in canonical `(from, to, call)` order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scripted fault events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule injects no faults at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The `call → action` script of the directed link `from → to`.
    pub fn actions_for(&self, from: AgentId, to: AgentId) -> BTreeMap<u64, FaultAction> {
        self.events
            .iter()
            .filter(|e| e.from == from && e.to == to)
            .map(|e| (e.call, e.action))
            .collect()
    }

    /// Renders the schedule in its line-oriented text format, one
    /// `from -> to @call action` event per line.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            out.push_str(&event.to_string());
            out.push('\n');
        }
        out
    }

    /// Parses the text format produced by [`FaultSchedule::to_text`].
    /// Blank lines and `#` comment lines are ignored.
    ///
    /// # Errors
    ///
    /// [`ScheduleParseError`] naming the first malformed line.
    pub fn parse(text: &str) -> Result<Self, ScheduleParseError> {
        let mut events = Vec::new();
        for (index, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            events.push(parse_event(line).map_err(|message| ScheduleParseError {
                line: index + 1,
                message,
            })?);
        }
        Ok(FaultSchedule::new(events))
    }
}

fn parse_event(line: &str) -> Result<FaultEvent, String> {
    let mut words = line.split_whitespace();
    let from = parse_agent(words.next(), "sender")?;
    if words.next() != Some("->") {
        return Err("expected `->` after the sender".to_string());
    }
    let to = parse_agent(words.next(), "recipient")?;
    let call = match words.next() {
        Some(w) if w.starts_with('@') => w
            .get(1..)
            .and_then(|digits| digits.parse::<u64>().ok())
            .ok_or_else(|| format!("bad call index `{w}`"))?,
        other => return Err(format!("expected `@call`, got {other:?}")),
    };
    let action = match words.next() {
        Some("drop") => FaultAction::Drop,
        Some("delay") => FaultAction::Delay(parse_u64(words.next(), "delay ticks")?),
        Some("dup") => FaultAction::Duplicate {
            first: parse_u64(words.next(), "first copy delay")?,
            second: parse_u64(words.next(), "second copy delay")?,
        },
        other => return Err(format!("expected drop/delay/dup, got {other:?}")),
    };
    if words.next().is_some() {
        return Err("trailing tokens after the action".to_string());
    }
    Ok(FaultEvent {
        from,
        to,
        call,
        action,
    })
}

fn parse_agent(word: Option<&str>, what: &str) -> Result<AgentId, String> {
    let raw = parse_u64(word, what)?;
    u32::try_from(raw)
        .map(AgentId::new)
        .map_err(|_| format!("{what} id {raw} does not fit an agent id"))
}

fn parse_u64(word: Option<&str>, what: &str) -> Result<u64, String> {
    word.ok_or_else(|| format!("missing {what}"))?
        .parse::<u64>()
        .map_err(|_| format!("bad {what} `{}`", word.unwrap_or_default()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(from: u32, to: u32, call: u64, action: FaultAction) -> FaultEvent {
        FaultEvent {
            from: AgentId::new(from),
            to: AgentId::new(to),
            call,
            action,
        }
    }

    #[test]
    fn canonical_order_and_dedup() {
        let s = FaultSchedule::new(vec![
            ev(1, 0, 2, FaultAction::Drop),
            ev(0, 1, 0, FaultAction::Delay(3)),
            ev(1, 0, 2, FaultAction::Delay(9)), // same slot: first kept
        ]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.events()[0], ev(0, 1, 0, FaultAction::Delay(3)));
        // Canonical sort puts Delay(9) < Drop is irrelevant: dedup keys on
        // the slot, keeping the action that sorts first.
        assert_eq!(s.events()[1].call, 2);
    }

    #[test]
    fn text_format_round_trips() {
        let s = FaultSchedule::new(vec![
            ev(0, 1, 3, FaultAction::Drop),
            ev(2, 0, 0, FaultAction::Delay(7)),
            ev(1, 2, 5, FaultAction::Duplicate { first: 0, second: 4 }),
        ]);
        let text = s.to_text();
        assert_eq!(FaultSchedule::parse(&text), Ok(s.clone()));
        let commented = format!("# fixture\n\n{text}");
        assert_eq!(FaultSchedule::parse(&commented), Ok(s));
    }

    #[test]
    fn parse_reports_bad_lines() {
        for (text, line) in [
            ("0 -> 1 @x drop", 1),
            ("garbage", 1),
            ("0 -> 1 @0 drop\n0 -> 1 @1 warp", 2),
            ("0 -> 1 @0 delay", 1),
            ("0 -> 1 @0 dup 1", 1),
            ("0 -> 1 @0 drop extra", 1),
            ("0 - 1 @0 drop", 1),
        ] {
            let err = FaultSchedule::parse(text).unwrap_err();
            assert_eq!(err.line, line, "{text}");
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn actions_for_filters_by_link() {
        let s = FaultSchedule::new(vec![
            ev(0, 1, 0, FaultAction::Drop),
            ev(0, 1, 4, FaultAction::Delay(2)),
            ev(1, 0, 0, FaultAction::Drop),
        ]);
        let map = s.actions_for(AgentId::new(0), AgentId::new(1));
        assert_eq!(map.len(), 2);
        assert_eq!(map.get(&4), Some(&FaultAction::Delay(2)));
        assert!(s
            .actions_for(AgentId::new(2), AgentId::new(0))
            .is_empty());
        assert!(FaultSchedule::default().is_empty());
    }
}
