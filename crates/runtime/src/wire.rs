//! Wire encodings for the runtime types that cross the `discsp-net`
//! process boundary: link policies (shipped to document the run in the
//! handshake), per-agent statistics (shipped back at teardown so
//! [`RunMetrics`](discsp_core::RunMetrics) aggregation survives the
//! socket), link fault counters, and message envelopes.

use discsp_core::{AgentId, Wire, WireError, WireReader};

use crate::agent::AgentStats;
use crate::link::{LinkPolicy, LinkStats};
use crate::message::Envelope;

impl Wire for LinkPolicy {
    fn encode(&self, out: &mut Vec<u8>) {
        self.delay_min.encode(out);
        self.delay_max.encode(out);
        self.drop_ppm.encode(out);
        self.dup_ppm.encode(out);
        self.reorder_window.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let delay_min = r.u64("LinkPolicy.delay_min")?;
        let delay_max = r.u64("LinkPolicy.delay_max")?;
        let drop_ppm = r.u32("LinkPolicy.drop_ppm")?;
        let dup_ppm = r.u32("LinkPolicy.dup_ppm")?;
        let reorder_window = r.u64("LinkPolicy.reorder_window")?;
        Ok(LinkPolicy {
            delay_min,
            delay_max,
            drop_ppm,
            dup_ppm,
            reorder_window,
        })
    }
}

impl Wire for LinkStats {
    fn encode(&self, out: &mut Vec<u8>) {
        self.sent.encode(out);
        self.dropped.encode(out);
        self.duplicated.encode(out);
        self.reordered.encode(out);
        self.retransmitted.encode(out);
        self.max_delay.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let sent = r.u64("LinkStats.sent")?;
        let dropped = r.u64("LinkStats.dropped")?;
        let duplicated = r.u64("LinkStats.duplicated")?;
        let reordered = r.u64("LinkStats.reordered")?;
        let retransmitted = r.u64("LinkStats.retransmitted")?;
        let max_delay = r.u64("LinkStats.max_delay")?;
        Ok(LinkStats {
            sent,
            dropped,
            duplicated,
            reordered,
            retransmitted,
            max_delay,
        })
    }
}

impl Wire for AgentStats {
    fn encode(&self, out: &mut Vec<u8>) {
        self.nogoods_generated.encode(out);
        self.redundant_nogoods.encode(out);
        self.largest_nogood.encode(out);
        self.messages_sent.encode(out);
        self.messages_dropped.encode(out);
        self.messages_duplicated.encode(out);
        self.messages_reordered.encode(out);
        self.messages_retransmitted.encode(out);
        self.max_delivery_delay.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let nogoods_generated = r.u64("AgentStats.nogoods_generated")?;
        let redundant_nogoods = r.u64("AgentStats.redundant_nogoods")?;
        let largest_nogood = r.u64("AgentStats.largest_nogood")?;
        let messages_sent = r.u64("AgentStats.messages_sent")?;
        let messages_dropped = r.u64("AgentStats.messages_dropped")?;
        let messages_duplicated = r.u64("AgentStats.messages_duplicated")?;
        let messages_reordered = r.u64("AgentStats.messages_reordered")?;
        let messages_retransmitted = r.u64("AgentStats.messages_retransmitted")?;
        let max_delivery_delay = r.u64("AgentStats.max_delivery_delay")?;
        Ok(AgentStats {
            nogoods_generated,
            redundant_nogoods,
            largest_nogood,
            messages_sent,
            messages_dropped,
            messages_duplicated,
            messages_reordered,
            messages_retransmitted,
            max_delivery_delay,
        })
    }
}

impl<M: Wire> Wire for Envelope<M> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.from.encode(out);
        self.to.encode(out);
        self.payload.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let from = AgentId::decode(r)?;
        let to = AgentId::decode(r)?;
        let payload = M::decode(r)?;
        Ok(Envelope { from, to, payload })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use discsp_core::Value;

    #[test]
    fn link_policy_roundtrips() {
        let policy = LinkPolicy::lossy(250_000)
            .with_duplication(50_000)
            .with_delay(1, 4)
            .with_reordering(2);
        assert_eq!(LinkPolicy::from_bytes(&policy.to_bytes()), Ok(policy));
    }

    #[test]
    fn link_stats_roundtrip() {
        let stats = LinkStats {
            sent: 10,
            dropped: 2,
            duplicated: 1,
            reordered: 3,
            retransmitted: 2,
            max_delay: 7,
        };
        assert_eq!(LinkStats::from_bytes(&stats.to_bytes()), Ok(stats));
    }

    #[test]
    fn agent_stats_roundtrip() {
        let stats = AgentStats {
            nogoods_generated: 5,
            largest_nogood: 4,
            max_delivery_delay: 9,
            ..AgentStats::default()
        };
        let bytes = stats.to_bytes();
        assert_eq!(AgentStats::from_bytes(&bytes), Ok(stats));
        assert!(AgentStats::from_bytes(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn envelope_roundtrips_with_payload() {
        let env = Envelope::new(AgentId::new(2), AgentId::new(5), Value::new(3));
        let bytes = env.to_bytes();
        let back = Envelope::<Value>::from_bytes(&bytes).expect("decodes");
        assert_eq!((back.from, back.to, back.payload), (env.from, env.to, env.payload));
    }
}
