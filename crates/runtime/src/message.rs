//! Message envelopes and classification.
//!
//! [`MessageClass`] and [`Classify`] live in `discsp-core` (trace events
//! carry a class, and the trace crate must not depend on a runtime);
//! they are re-exported here so runtime users keep one import path.

use std::fmt;

use discsp_core::AgentId;
pub use discsp_core::{Classify, MessageClass};
use serde::{Deserialize, Serialize};

/// A routed message: payload plus sender and recipient.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Envelope<M> {
    /// Sending agent.
    pub from: AgentId,
    /// Receiving agent.
    pub to: AgentId,
    /// Algorithm-specific payload.
    pub payload: M,
}

impl<M> Envelope<M> {
    /// Creates an envelope.
    pub fn new(from: AgentId, to: AgentId, payload: M) -> Self {
        Envelope { from, to, payload }
    }
}

impl<M: fmt::Display> fmt::Display for Envelope<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} → {}: {}", self.from, self.to, self.payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Ping;

    impl Classify for Ping {
        fn class(&self) -> MessageClass {
            MessageClass::Other
        }
    }

    impl fmt::Display for Ping {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("ping")
        }
    }

    #[test]
    fn envelope_construction_and_display() {
        let env = Envelope::new(AgentId::new(0), AgentId::new(1), Ping);
        assert_eq!(env.from, AgentId::new(0));
        assert_eq!(env.to, AgentId::new(1));
        assert_eq!(env.to_string(), "a0 → a1: ping");
    }

    #[test]
    fn classes_display() {
        assert_eq!(MessageClass::Ok.to_string(), "ok?");
        assert_eq!(MessageClass::Nogood.to_string(), "nogood");
        assert_eq!(MessageClass::Other.to_string(), "other");
        assert_eq!(Ping.class(), MessageClass::Other);
    }
}
