//! Message envelopes and classification.

use std::fmt;

use discsp_core::AgentId;
use serde::{Deserialize, Serialize};

/// Broad message classes, used by the runtimes to attribute message counts
/// to the paper's categories (`ok?`, `nogood`, everything else).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MessageClass {
    /// An `ok?` message announcing a value (and priority).
    Ok,
    /// A `nogood` message carrying a learned nogood.
    Nogood,
    /// Any other algorithm message (`improve`, add-link requests, …).
    Other,
}

impl fmt::Display for MessageClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MessageClass::Ok => "ok?",
            MessageClass::Nogood => "nogood",
            MessageClass::Other => "other",
        };
        f.write_str(s)
    }
}

/// Implemented by algorithm message types so runtimes can meter traffic
/// without knowing the concrete protocol.
pub trait Classify {
    /// The broad class of this message.
    fn class(&self) -> MessageClass;
}

/// A routed message: payload plus sender and recipient.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Envelope<M> {
    /// Sending agent.
    pub from: AgentId,
    /// Receiving agent.
    pub to: AgentId,
    /// Algorithm-specific payload.
    pub payload: M,
}

impl<M> Envelope<M> {
    /// Creates an envelope.
    pub fn new(from: AgentId, to: AgentId, payload: M) -> Self {
        Envelope { from, to, payload }
    }
}

impl<M: fmt::Display> fmt::Display for Envelope<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} → {}: {}", self.from, self.to, self.payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Ping;

    impl Classify for Ping {
        fn class(&self) -> MessageClass {
            MessageClass::Other
        }
    }

    impl fmt::Display for Ping {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("ping")
        }
    }

    #[test]
    fn envelope_construction_and_display() {
        let env = Envelope::new(AgentId::new(0), AgentId::new(1), Ping);
        assert_eq!(env.from, AgentId::new(0));
        assert_eq!(env.to, AgentId::new(1));
        assert_eq!(env.to_string(), "a0 → a1: ping");
    }

    #[test]
    fn classes_display() {
        assert_eq!(MessageClass::Ok.to_string(), "ok?");
        assert_eq!(MessageClass::Nogood.to_string(), "nogood");
        assert_eq!(MessageClass::Other.to_string(), "other");
        assert_eq!(Ping.class(), MessageClass::Other);
    }
}
