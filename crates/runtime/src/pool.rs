//! Per-shard agent arenas for the M:N sharded executor.
//!
//! Two pieces live here. [`Slab`] is a std-only arena in the
//! `sharded_slab::Pool` shape: values occupy dense slots, freed slots go
//! on an intrusive free list and are reused LIFO, so a shard worker's
//! agents sit contiguously in memory and slot keys stay small and dense.
//! [`ShardPlan`] is the seed-derived placement of an agent population
//! onto `workers` shards: a SplitMix64-shuffled permutation of the agent
//! ids is dealt round-robin, which balances shard sizes to within one
//! agent while making both the assignment *and* each shard's internal
//! drain order a pure function of `(run_seed, n, workers)` — never of
//! thread timing.
//!
//! Determinism survives M:N because the plan is only a partition: the
//! coordinator merges every wave's per-agent outputs back in ascending
//! agent-id order before they touch the router or the trace, so the
//! within-shard drain order (and the worker count itself) is
//! unobservable in any run artifact.

use crate::seed::SplitMix64;

/// Domain-separation constant for the shard-placement stream, so placing
/// agents never correlates with the per-link fault streams derived from
/// the same run seed.
const SHARD_STREAM: u64 = 0x243F_6A88_85A3_08D3;

#[derive(Debug)]
enum Entry<T> {
    Occupied(T),
    Vacant { next_free: Option<usize> },
}

/// A slot arena with LIFO slot reuse.
///
/// Keys are dense `usize` slots; removing a value frees its slot for the
/// next insertion. Slot keys are stable for the lifetime of the value.
#[derive(Debug)]
pub struct Slab<T> {
    entries: Vec<Entry<T>>,
    free_head: Option<usize>,
    len: usize,
}

impl<T> Slab<T> {
    /// An empty arena.
    pub fn new() -> Self {
        Slab {
            entries: Vec::new(),
            free_head: None,
            len: 0,
        }
    }

    /// An empty arena with room for `capacity` values before reallocating.
    pub fn with_capacity(capacity: usize) -> Self {
        Slab {
            entries: Vec::with_capacity(capacity),
            free_head: None,
            len: 0,
        }
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no slot is occupied.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total slots ever allocated (occupied + free-listed).
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Stores `value`, reusing the most recently freed slot if one
    /// exists, and returns its slot key.
    pub fn insert(&mut self, value: T) -> usize {
        self.len += 1;
        match self.free_head {
            Some(slot) => {
                self.free_head = match self.entries.get(slot) {
                    Some(Entry::Vacant { next_free }) => *next_free,
                    _ => None,
                };
                if let Some(entry) = self.entries.get_mut(slot) {
                    *entry = Entry::Occupied(value);
                }
                slot
            }
            None => {
                self.entries.push(Entry::Occupied(value));
                self.entries.len().saturating_sub(1)
            }
        }
    }

    /// The value at `slot`, if occupied.
    pub fn get(&self, slot: usize) -> Option<&T> {
        match self.entries.get(slot) {
            Some(Entry::Occupied(value)) => Some(value),
            _ => None,
        }
    }

    /// Mutable access to the value at `slot`, if occupied.
    pub fn get_mut(&mut self, slot: usize) -> Option<&mut T> {
        match self.entries.get_mut(slot) {
            Some(Entry::Occupied(value)) => Some(value),
            _ => None,
        }
    }

    /// Removes and returns the value at `slot`, freeing the slot for
    /// reuse. Returns `None` when the slot is vacant or out of range.
    pub fn remove(&mut self, slot: usize) -> Option<T> {
        let entry = self.entries.get_mut(slot)?;
        if matches!(entry, Entry::Vacant { .. }) {
            return None;
        }
        let freed = std::mem::replace(
            entry,
            Entry::Vacant {
                next_free: self.free_head,
            },
        );
        self.free_head = Some(slot);
        self.len -= 1;
        match freed {
            Entry::Occupied(value) => Some(value),
            Entry::Vacant { .. } => None,
        }
    }
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab::new()
    }
}

/// The seed-derived placement of `n` agents onto `workers` shards.
///
/// Placement is a pure function of `(run_seed, n, workers)`: a
/// Fisher–Yates shuffle of the agent ids (domain-separated from the link
/// streams) dealt round-robin. Shard sizes differ by at most one, and an
/// agent's slot index within its shard doubles as the shard's drain
/// position.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    workers: usize,
    /// Agent id → `(shard, slot)`.
    placement: Vec<(u32, u32)>,
    /// Per shard: agent ids in slot (= drain) order.
    members: Vec<Vec<usize>>,
}

impl ShardPlan {
    /// Plans `n` agents onto `workers` shards (clamped to at least 1)
    /// under `run_seed`.
    pub fn new(n: usize, workers: usize, run_seed: u64) -> Self {
        let workers = workers.max(1).min(n.max(1));
        let mut perm: Vec<usize> = (0..n).collect();
        let mut rng = SplitMix64::new(run_seed ^ SHARD_STREAM);
        for i in (1..n).rev() {
            let j = rng.next_below(i as u64 + 1) as usize;
            perm.swap(i, j);
        }
        let mut members: Vec<Vec<usize>> = (0..workers).map(|_| Vec::new()).collect();
        let mut placement = vec![(0u32, 0u32); n];
        for (deal, &agent) in perm.iter().enumerate() {
            let shard = deal % workers;
            if let (Some(bucket), Some(place)) =
                (members.get_mut(shard), placement.get_mut(agent))
            {
                *place = (shard as u32, bucket.len() as u32);
                bucket.push(agent);
            }
        }
        ShardPlan {
            workers,
            placement,
            members,
        }
    }

    /// Number of shards (= worker threads).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The `(shard, slot)` an agent was dealt to.
    pub fn placement_of(&self, agent: usize) -> (usize, usize) {
        match self.placement.get(agent) {
            Some(&(shard, slot)) => (shard as usize, slot as usize),
            None => (0, 0),
        }
    }

    /// The agent ids of one shard, in slot (= drain) order.
    pub fn members(&self, shard: usize) -> &[usize] {
        match self.members.get(shard) {
            Some(ids) => ids,
            None => &[],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slab_inserts_and_reuses_slots_lifo() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        let c = slab.insert("c");
        assert_eq!((a, b, c), (0, 1, 2));
        assert_eq!(slab.len(), 3);
        assert_eq!(slab.remove(b), Some("b"));
        assert_eq!(slab.remove(a), Some("a"));
        assert_eq!(slab.remove(a), None, "double-free is a no-op");
        assert_eq!(slab.len(), 1);
        // LIFO reuse: the most recently freed slot (a = 0) comes back
        // first, then b = 1; capacity never grows past 3.
        assert_eq!(slab.insert("d"), a);
        assert_eq!(slab.insert("e"), b);
        assert_eq!(slab.capacity(), 3);
        assert_eq!(slab.get(c), Some(&"c"));
        if let Some(v) = slab.get_mut(c) {
            *v = "C";
        }
        assert_eq!(slab.get(c), Some(&"C"));
        assert_eq!(slab.get(99), None);
    }

    #[test]
    fn shard_plan_is_a_balanced_partition() {
        let plan = ShardPlan::new(103, 8, 42);
        assert_eq!(plan.workers(), 8);
        let mut seen = [false; 103];
        for shard in 0..plan.workers() {
            let members = plan.members(shard);
            assert!(
                (103 / 8..=103 / 8 + 1).contains(&members.len()),
                "shard sizes within one of each other"
            );
            for (slot, &agent) in members.iter().enumerate() {
                assert_eq!(plan.placement_of(agent), (shard, slot));
                assert!(!seen[agent], "agent dealt twice");
                seen[agent] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every agent placed");
    }

    #[test]
    fn shard_plan_is_seed_derived() {
        let a = ShardPlan::new(64, 4, 7);
        let b = ShardPlan::new(64, 4, 7);
        let c = ShardPlan::new(64, 4, 8);
        for shard in 0..4 {
            assert_eq!(a.members(shard), b.members(shard), "same seed, same plan");
        }
        assert!(
            (0..4).any(|s| a.members(s) != c.members(s)),
            "different seed, different plan"
        );
    }

    #[test]
    fn shard_plan_clamps_degenerate_worker_counts() {
        let zero = ShardPlan::new(5, 0, 1);
        assert_eq!(zero.workers(), 1);
        assert_eq!(zero.members(0).len(), 5);
        let oversubscribed = ShardPlan::new(3, 16, 1);
        assert_eq!(oversubscribed.workers(), 3, "never more shards than agents");
        let empty = ShardPlan::new(0, 4, 1);
        assert_eq!(empty.workers(), 1);
        assert!(empty.members(0).is_empty());
    }
}
