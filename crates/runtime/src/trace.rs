//! Execution traces: an opt-in event log of everything observable at the
//! simulator level — message deliveries and variable changes per cycle.
//!
//! Traces exist for debugging agent protocols and for teaching: rendering
//! one shows the negotiation unfold cycle by cycle. They are off by
//! default because a trace grows with total traffic.

use std::fmt;

use discsp_core::{AgentId, Value, VariableId};
use serde::{Deserialize, Serialize};

use crate::message::MessageClass;

/// What an injected link fault did to a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The message was dropped (and parked for later retransmission).
    Dropped,
    /// An extra copy of the message was enqueued.
    Duplicated,
    /// The message was assigned a delivery tick that overtakes an
    /// earlier message on the same link.
    Reordered,
    /// The message was delayed by this many virtual ticks.
    Delayed(u64),
    /// A previously dropped message was re-enqueued by the recovery pass.
    Retransmitted,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Dropped => f.write_str("dropped"),
            FaultKind::Duplicated => f.write_str("duplicated"),
            FaultKind::Reordered => f.write_str("reordered"),
            FaultKind::Delayed(ticks) => write!(f, "delayed +{ticks}"),
            FaultKind::Retransmitted => f.write_str("retransmitted"),
        }
    }
}

/// One observable event during a synchronous run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A message was delivered at the start of a cycle.
    Delivered {
        /// Delivery cycle.
        cycle: u64,
        /// Sending agent.
        from: AgentId,
        /// Receiving agent.
        to: AgentId,
        /// Message class.
        class: MessageClass,
    },
    /// A variable's announced value changed during a cycle.
    ValueChanged {
        /// The cycle in which the change became visible.
        cycle: u64,
        /// The variable.
        var: VariableId,
        /// The previous value (`None` on the first observation).
        old: Option<Value>,
        /// The new value.
        new: Value,
    },
    /// The link layer injected a fault into a message (recorded by the
    /// deterministic faulty-link runtime; `cycle` is the virtual tick at
    /// which the sender emitted the message).
    Fault {
        /// Virtual tick of the send.
        cycle: u64,
        /// Sending agent.
        from: AgentId,
        /// Intended receiving agent.
        to: AgentId,
        /// Message class.
        class: MessageClass,
        /// What the fault did.
        kind: FaultKind,
    },
}

impl TraceEvent {
    /// The cycle this event belongs to.
    pub fn cycle(&self) -> u64 {
        match self {
            TraceEvent::Delivered { cycle, .. } => *cycle,
            TraceEvent::ValueChanged { cycle, .. } => *cycle,
            TraceEvent::Fault { cycle, .. } => *cycle,
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Delivered {
                cycle,
                from,
                to,
                class,
            } => write!(f, "[{cycle:>4}] {from} → {to}  ({class})"),
            TraceEvent::ValueChanged {
                cycle,
                var,
                old,
                new,
            } => match old {
                Some(old) => write!(f, "[{cycle:>4}] {var}: {old} ⇒ {new}"),
                None => write!(f, "[{cycle:>4}] {var}: ⇒ {new}"),
            },
            TraceEvent::Fault {
                cycle,
                from,
                to,
                class,
                kind,
            } => write!(f, "[{cycle:>4}] {from} ⇏ {to}  ({class}) {kind}"),
        }
    }
}

/// Renders a trace grouped by cycle, with a compact one-line-per-event
/// body.
pub fn render_trace(events: &[TraceEvent]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let mut last_cycle = None;
    for event in events {
        if last_cycle != Some(event.cycle()) {
            if last_cycle.is_some() {
                out.push('\n');
            }
            let _ = writeln!(out, "— cycle {} —", event.cycle());
            last_cycle = Some(event.cycle());
        }
        let _ = writeln!(out, "{event}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_know_their_cycle() {
        let delivered = TraceEvent::Delivered {
            cycle: 3,
            from: AgentId::new(0),
            to: AgentId::new(1),
            class: MessageClass::Ok,
        };
        assert_eq!(delivered.cycle(), 3);
        let changed = TraceEvent::ValueChanged {
            cycle: 4,
            var: VariableId::new(2),
            old: Some(Value::new(0)),
            new: Value::new(1),
        };
        assert_eq!(changed.cycle(), 4);
    }

    #[test]
    fn display_forms() {
        let delivered = TraceEvent::Delivered {
            cycle: 12,
            from: AgentId::new(0),
            to: AgentId::new(1),
            class: MessageClass::Nogood,
        };
        assert_eq!(delivered.to_string(), "[  12] a0 → a1  (nogood)");
        let first = TraceEvent::ValueChanged {
            cycle: 1,
            var: VariableId::new(5),
            old: None,
            new: Value::new(2),
        };
        assert_eq!(first.to_string(), "[   1] x5: ⇒ 2");
        let fault = TraceEvent::Fault {
            cycle: 7,
            from: AgentId::new(2),
            to: AgentId::new(3),
            class: MessageClass::Ok,
            kind: FaultKind::Delayed(4),
        };
        assert_eq!(fault.to_string(), "[   7] a2 ⇏ a3  (ok?) delayed +4");
        assert_eq!(fault.cycle(), 7);
        assert_eq!(FaultKind::Dropped.to_string(), "dropped");
        assert_eq!(FaultKind::Retransmitted.to_string(), "retransmitted");
    }

    #[test]
    fn rendering_groups_by_cycle() {
        let events = vec![
            TraceEvent::ValueChanged {
                cycle: 1,
                var: VariableId::new(0),
                old: None,
                new: Value::new(0),
            },
            TraceEvent::Delivered {
                cycle: 2,
                from: AgentId::new(0),
                to: AgentId::new(1),
                class: MessageClass::Ok,
            },
            TraceEvent::ValueChanged {
                cycle: 2,
                var: VariableId::new(1),
                old: Some(Value::new(0)),
                new: Value::new(1),
            },
        ];
        let text = render_trace(&events);
        assert!(text.contains("— cycle 1 —"));
        assert!(text.contains("— cycle 2 —"));
        assert_eq!(text.matches("— cycle").count(), 2);
    }

    #[test]
    fn empty_trace_renders_empty() {
        assert!(render_trace(&[]).is_empty());
    }
}
