//! The asynchronous runtime: one OS thread per agent, crossbeam channels
//! as links.
//!
//! The paper's algorithms "are designed for a fully asynchronous
//! distributed system, and thereby can work on any type of distributed
//! systems" (§5). This runtime demonstrates exactly that: the same
//! [`DistributedAgent`] implementations that run on the synchronous
//! simulator run here with real concurrency, unordered cross-agent
//! interleavings, and optional per-activation jitter.
//!
//! Solution detection uses the classic in-flight counting scheme: a global
//! counter is incremented *before* a message is enqueued and decremented
//! only *after* the receiving agent has processed it **and** enqueued its
//! own reactions. `in_flight == 0` therefore implies global quiescence,
//! and quiescence plus a consistent global snapshot implies a stable
//! solution (agents only act on messages).

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use discsp_core::{AgentId, Assignment, DistributedCsp, RunMetrics, Termination, TrialOutcome};
use parking_lot::Mutex;

use crate::agent::{AgentStats, DistributedAgent, Outbox};
use crate::error::RuntimeError;
use crate::message::{Envelope, MessageClass};
use crate::seed::SplitMix64;

/// Configuration of an asynchronous run.
#[derive(Debug, Clone)]
pub struct AsyncConfig {
    /// Hard wall-clock limit; the run reports a cutoff when exceeded.
    pub max_wall_time: Duration,
    /// Upper bound (exclusive) of the uniform random delay, in
    /// microseconds, injected before each agent activation. Zero disables
    /// jitter.
    pub jitter_micros: u64,
    /// Seed for the jitter streams.
    pub seed: u64,
    /// When `true`, the observer stops at the *first* globally consistent
    /// snapshot instead of requiring quiescence. This matches the paper's
    /// measurement semantics ("cycles consumed until a solution is
    /// found") and is required for algorithms whose protocol never goes
    /// quiet, such as the distributed breakout's ok?/improve waves.
    pub stop_on_first_solution: bool,
}

impl Default for AsyncConfig {
    fn default() -> Self {
        AsyncConfig {
            max_wall_time: Duration::from_secs(30),
            jitter_micros: 0,
            seed: 0,
            stop_on_first_solution: false,
        }
    }
}

/// Result of an asynchronous run.
#[derive(Debug, Clone)]
pub struct AsyncReport {
    /// Metrics and solution. `cycles` and `maxcck` are synchronous-
    /// simulator notions and are reported as 0 here; `total_checks` and
    /// the message counters are exact.
    pub outcome: TrialOutcome,
    /// Wall-clock duration of the run.
    pub wall_time: Duration,
    /// Total agent activations (batches processed, including starts).
    pub activations: u64,
}

struct Shared {
    in_flight: AtomicI64,
    stop: AtomicBool,
    insoluble: AtomicBool,
    snapshot: Mutex<Assignment>,
    started: AtomicI64,
    activations: AtomicU64,
    ok_messages: AtomicU64,
    nogood_messages: AtomicU64,
    other_messages: AtomicU64,
    /// Raw id + 1 of the first unroutable addressee; 0 = none. Set by
    /// worker threads, turned into [`RuntimeError::UnknownRecipient`] by
    /// the observer.
    bad_recipient: AtomicU64,
}

/// Runs `agents` asynchronously against `problem` until a stable solution,
/// a proof of insolubility, or the wall-clock limit.
///
/// # Errors
///
/// [`RuntimeError::NonDenseAgentIds`] unless agent *i* reports id *i*
/// (dense routing, as in the synchronous simulator);
/// [`RuntimeError::UnknownRecipient`] when a message addresses an agent
/// outside the population; [`RuntimeError::AgentPanicked`] when an agent
/// thread dies mid-run (the remaining threads are shut down first).
pub fn run_async<A>(
    agents: Vec<A>,
    problem: &DistributedCsp,
    config: &AsyncConfig,
) -> Result<AsyncReport, RuntimeError>
where
    A: DistributedAgent + Send + 'static,
{
    for (position, agent) in agents.iter().enumerate() {
        if agent.id().index() != position {
            return Err(RuntimeError::NonDenseAgentIds {
                position,
                found: agent.id(),
            });
        }
    }
    let n = agents.len();
    let shared = Arc::new(Shared {
        in_flight: AtomicI64::new(0),
        stop: AtomicBool::new(false),
        insoluble: AtomicBool::new(false),
        snapshot: Mutex::new(Assignment::empty(problem.num_vars())),
        started: AtomicI64::new(0),
        activations: AtomicU64::new(0),
        ok_messages: AtomicU64::new(0),
        nogood_messages: AtomicU64::new(0),
        other_messages: AtomicU64::new(0),
        bad_recipient: AtomicU64::new(0),
    });

    let (senders, receivers): (Vec<Sender<Envelope<A::Message>>>, Vec<_>) =
        (0..n).map(|_| unbounded()).unzip();

    // lint: allow(timing): wall-clock cutoff is inherent to the async
    // runtime; the paper's cycle/maxcck metrics are sync-simulator-only.
    let start = Instant::now();
    let mut handles = Vec::with_capacity(n);
    for (i, (mut agent, rx)) in agents.into_iter().zip(receivers).enumerate() {
        let shared = Arc::clone(&shared);
        let senders = senders.clone();
        let jitter = config.jitter_micros;
        let mut rng = SplitMix64::new(config.seed ^ (i as u64).wrapping_mul(0x2545_F491_4F6C_DD1D));
        handles.push(thread::spawn(move || {
            worker(&mut agent, rx, &senders, &shared, jitter, &mut rng);
            agent
        }));
    }

    // Observer: wait for quiescent solution, insolubility, a routing
    // failure, or timeout.
    let mut termination = Termination::CutOff;
    let mut error = None;
    loop {
        thread::sleep(Duration::from_micros(200));
        if shared.insoluble.load(Ordering::SeqCst) {
            termination = Termination::Insoluble;
            break;
        }
        let bad = shared.bad_recipient.load(Ordering::SeqCst);
        if bad != 0 {
            error = Some(RuntimeError::UnknownRecipient {
                agent: AgentId::new((bad - 1) as u32),
            });
            break;
        }
        let all_started = shared.started.load(Ordering::SeqCst) as usize == n;
        let quiescent = shared.in_flight.load(Ordering::SeqCst) == 0;
        if all_started && (quiescent || config.stop_on_first_solution) {
            let snapshot = shared.snapshot.lock();
            if problem.is_solution(&snapshot) {
                termination = Termination::Solved;
                break;
            }
        }
        if start.elapsed() > config.max_wall_time {
            break;
        }
    }
    shared.stop.store(true, Ordering::SeqCst);

    let mut metrics = RunMetrics::new(termination);
    let mut agent_stats = AgentStats::default();
    for (position, handle) in handles.into_iter().enumerate() {
        // Join every thread even after a failure: a panic poisons one
        // agent's channel, not the process. The first failure wins.
        match handle.join() {
            Ok(mut agent) => {
                metrics.total_checks += agent.take_checks();
                agent_stats.absorb(agent.stats());
            }
            Err(_) => {
                if error.is_none() {
                    error = Some(RuntimeError::AgentPanicked {
                        agent: AgentId::new(position as u32),
                    });
                }
            }
        }
    }
    if let Some(error) = error {
        return Err(error);
    }
    metrics.ok_messages = shared.ok_messages.load(Ordering::SeqCst);
    metrics.nogood_messages = shared.nogood_messages.load(Ordering::SeqCst);
    metrics.other_messages = shared.other_messages.load(Ordering::SeqCst);
    metrics.nogoods_generated = agent_stats.nogoods_generated;
    metrics.redundant_nogoods = agent_stats.redundant_nogoods;
    metrics.largest_nogood = agent_stats.largest_nogood;

    let solution = if termination == Termination::Solved {
        Some(shared.snapshot.lock().clone())
    } else {
        None
    };

    Ok(AsyncReport {
        outcome: TrialOutcome { metrics, solution },
        wall_time: start.elapsed(),
        activations: shared.activations.load(Ordering::SeqCst),
    })
}

fn worker<A: DistributedAgent>(
    agent: &mut A,
    rx: Receiver<Envelope<A::Message>>,
    senders: &[Sender<Envelope<A::Message>>],
    shared: &Shared,
    jitter_micros: u64,
    rng: &mut SplitMix64,
) {
    // Start: announce initial values before reporting "started", so that
    // quiescence cannot be observed before the initial wave is in flight.
    let mut out = Outbox::new(agent.id());
    agent.on_start(&mut out);
    dispatch(out, senders, shared);
    publish(agent, shared);
    shared.activations.fetch_add(1, Ordering::SeqCst);
    shared.started.fetch_add(1, Ordering::SeqCst);

    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        // Block briefly for the first message, then drain what's there.
        let first = match rx.recv_timeout(Duration::from_millis(1)) {
            Ok(env) => env,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return,
        };
        let mut batch = vec![first];
        while let Ok(env) = rx.try_recv() {
            batch.push(env);
        }
        if jitter_micros > 0 {
            let delay = rng.next_below(jitter_micros);
            thread::sleep(Duration::from_micros(delay));
        }
        let consumed = batch.len() as i64;
        let mut out = Outbox::new(agent.id());
        agent.on_batch(batch, &mut out);
        // Enqueue reactions BEFORE decrementing what we consumed: in-flight
        // can only reach zero when the whole causal chain has drained.
        dispatch(out, senders, shared);
        publish(agent, shared);
        shared.activations.fetch_add(1, Ordering::SeqCst);
        shared.in_flight.fetch_sub(consumed, Ordering::SeqCst);
        if agent.detected_insoluble() {
            shared.insoluble.store(true, Ordering::SeqCst);
            return;
        }
    }
}

fn dispatch<M: crate::message::Classify>(
    mut out: Outbox<M>,
    senders: &[Sender<Envelope<M>>],
    shared: &Shared,
) {
    let msgs = out.drain();
    shared
        .in_flight
        .fetch_add(msgs.len() as i64, Ordering::SeqCst);
    for env in msgs {
        match env.payload.class() {
            MessageClass::Ok => shared.ok_messages.fetch_add(1, Ordering::SeqCst),
            MessageClass::Nogood => shared.nogood_messages.fetch_add(1, Ordering::SeqCst),
            MessageClass::Other => shared.other_messages.fetch_add(1, Ordering::SeqCst),
        };
        let to = env.to.index();
        let Some(sender) = senders.get(to) else {
            // Unroutable addressee: report it instead of panicking the
            // worker thread; the observer turns this into an error.
            shared
                .bad_recipient
                .compare_exchange(0, env.to.raw() as u64 + 1, Ordering::SeqCst, Ordering::SeqCst)
                .ok();
            shared.in_flight.fetch_sub(1, Ordering::SeqCst);
            continue;
        };
        // A send can fail only during shutdown, when the receiver exited;
        // the message no longer matters but the counter must stay exact.
        if sender.send(env).is_err() {
            shared.in_flight.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

fn publish<A: DistributedAgent>(agent: &A, shared: &Shared) {
    let mut snapshot = shared.snapshot.lock();
    for vv in agent.assignments() {
        snapshot.set(vv.var, vv.value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::AgentStats;
    use crate::message::Classify;
    use discsp_core::{AgentId, Domain, Nogood, Value, VarValue, VariableId};

    /// Agents that must all agree on `true`: each starts `false` except
    /// agent 0, and flips to the max value it has heard, gossiping changes
    /// to the next agent in a ring.
    #[derive(Debug, Clone)]
    struct Gossip(Value);

    impl Classify for Gossip {
        fn class(&self) -> MessageClass {
            MessageClass::Ok
        }
    }

    struct RingAgent {
        id: AgentId,
        n: usize,
        value: Value,
    }

    impl RingAgent {
        fn next(&self) -> AgentId {
            AgentId::new(((self.id.index() + 1) % self.n) as u32)
        }
    }

    impl DistributedAgent for RingAgent {
        type Message = Gossip;

        fn id(&self) -> AgentId {
            self.id
        }

        fn on_start(&mut self, out: &mut Outbox<Gossip>) {
            out.send(self.next(), Gossip(self.value));
        }

        fn on_batch(&mut self, inbox: Vec<Envelope<Gossip>>, out: &mut Outbox<Gossip>) {
            let mut changed = false;
            for env in inbox {
                if env.payload.0 > self.value {
                    self.value = env.payload.0;
                    changed = true;
                }
            }
            if changed {
                out.send(self.next(), Gossip(self.value));
            }
        }

        fn assignments(&self) -> Vec<VarValue> {
            vec![VarValue::new(VariableId::new(self.id.raw()), self.value)]
        }

        fn take_checks(&mut self) -> u64 {
            0
        }

        fn stats(&self) -> AgentStats {
            AgentStats::default()
        }
    }

    fn all_true_problem(n: usize) -> DistributedCsp {
        let mut b = DistributedCsp::builder();
        let vars: Vec<_> = (0..n).map(|_| b.variable(Domain::BOOL)).collect();
        for &v in &vars {
            b.nogood(Nogood::of([(v, Value::FALSE)])).unwrap();
        }
        b.build().unwrap()
    }

    fn ring(n: usize) -> Vec<RingAgent> {
        (0..n)
            .map(|i| RingAgent {
                id: AgentId::new(i as u32),
                n,
                value: Value::from_bool(i == 0),
            })
            .collect()
    }

    #[test]
    fn async_run_converges_to_quiescent_solution() {
        let problem = all_true_problem(5);
        let report = run_async(ring(5), &problem, &AsyncConfig::default()).expect("runs");
        assert_eq!(report.outcome.metrics.termination, Termination::Solved);
        let sol = report.outcome.solution.unwrap();
        for i in 0..5 {
            assert_eq!(sol.get(VariableId::new(i)), Some(Value::TRUE));
        }
        // 5 start messages + 4 propagation messages (agent 0 never flips).
        assert_eq!(report.outcome.metrics.ok_messages, 9);
        assert!(report.activations >= 5);
    }

    #[test]
    fn async_run_with_jitter_still_converges() {
        let problem = all_true_problem(4);
        let config = AsyncConfig {
            jitter_micros: 500,
            seed: 7,
            ..AsyncConfig::default()
        };
        let report = run_async(ring(4), &problem, &config).expect("runs");
        assert_eq!(report.outcome.metrics.termination, Termination::Solved);
    }

    #[test]
    fn async_run_times_out_on_unsolvable_gossip() {
        // Nobody holds `true`, so the ring can never satisfy the problem;
        // gossip quiesces at all-false, which is not a solution.
        let problem = all_true_problem(3);
        let mut agents = ring(3);
        agents[0].value = Value::FALSE;
        let config = AsyncConfig {
            max_wall_time: Duration::from_millis(200),
            ..AsyncConfig::default()
        };
        let report = run_async(agents, &problem, &config).expect("runs");
        assert_eq!(report.outcome.metrics.termination, Termination::CutOff);
        assert!(report.outcome.solution.is_none());
    }
}
