//! The asynchronous runtime: one OS thread per agent, crossbeam channels
//! as links.
//!
//! The paper's algorithms "are designed for a fully asynchronous
//! distributed system, and thereby can work on any type of distributed
//! systems" (§5). This runtime demonstrates exactly that: the same
//! [`DistributedAgent`] implementations that run on the synchronous
//! simulator run here with real concurrency, unordered cross-agent
//! interleavings, optional per-activation jitter, and — through the
//! [`crate::link`] layer — seeded drop, duplication, delay, and
//! reordering faults on every link.
//!
//! Solution detection uses the classic in-flight counting scheme: a global
//! counter is incremented *before* a message is enqueued and decremented
//! only *after* the receiving agent has processed it **and** enqueued its
//! own reactions. The fault layer preserves the invariant exactly: a
//! dropped message decrements the counter at the drop point (and is
//! parked for recovery), a duplicate increments it at the dup point, and
//! a delayed message stays counted while held back. `in_flight == 0`
//! therefore still implies global quiescence, and quiescence plus a
//! consistent global snapshot implies a stable solution (agents only act
//! on messages). A quiescent *non*-solution is a stall — the observer
//! answers it with bounded recovery passes (retransmit parked drops, ask
//! agents to re-announce and re-evaluate via
//! [`DistributedAgent::on_nudge`]) before reporting a cutoff, instead of
//! idling out the wall clock. Recovery is *not* gated on the fault
//! policy: a protocol can park itself without losing a single message
//! (AWC's repeated-nogood rule silences a deadended agent), so perfect
//! links stall too — rarely, and only under real-concurrency
//! interleavings, which is exactly where this runtime lives.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use discsp_core::{AgentId, Assignment, DistributedCsp, RunMetrics, Termination, TrialOutcome};
use discsp_trace::{canonical_sort, FaultKind, RingBuffer, RuntimeKind, TraceEvent, TraceSink};
use parking_lot::Mutex;

use crate::agent::{AgentStats, DistributedAgent, Outbox};
use crate::error::RuntimeError;
use crate::link::{derive_link_seed, Link, LinkPolicy, LinkStats};
use crate::message::{Classify, Envelope, MessageClass};
use crate::recorder::StepRecorder;
use crate::seed::SplitMix64;

/// Configuration of an asynchronous run.
#[derive(Debug, Clone)]
pub struct AsyncConfig {
    /// Hard wall-clock limit; the run reports a cutoff when exceeded.
    pub max_wall_time: Duration,
    /// Upper bound (exclusive) of the uniform random delay, in
    /// microseconds, injected before each agent activation. Zero disables
    /// jitter.
    pub jitter_micros: u64,
    /// Seed for the jitter streams and every per-link fault stream.
    pub seed: u64,
    /// When `true`, the observer stops at the *first* globally consistent
    /// snapshot instead of requiring quiescence. This matches the paper's
    /// measurement semantics ("cycles consumed until a solution is
    /// found") and is required for algorithms whose protocol never goes
    /// quiet, such as the distributed breakout's ok?/improve waves.
    pub stop_on_first_solution: bool,
    /// Fault policy applied to every link (default: perfect links).
    pub link: LinkPolicy,
    /// How many stall-triggered recovery passes to run before reporting a
    /// cutoff. Recovery runs even over perfect links: a protocol can park
    /// itself without any message loss (AWC's "same nogood as last time →
    /// do nothing" rule leaves a deadended agent silent), and a nudge is
    /// the only way back out.
    pub max_nudges: u64,
    /// Record each worker's deliveries, sends, faults, and agent steps
    /// into [`AsyncReport::trace`] (merged and canonically sorted at
    /// join time). Event cycles are coarse virtual-clock stamps.
    pub record_trace: bool,
}

impl Default for AsyncConfig {
    fn default() -> Self {
        AsyncConfig {
            max_wall_time: Duration::from_secs(30),
            jitter_micros: 0,
            seed: 0,
            stop_on_first_solution: false,
            link: LinkPolicy::perfect(),
            max_nudges: 64,
            record_trace: false,
        }
    }
}

/// Result of an asynchronous run.
#[derive(Debug, Clone)]
pub struct AsyncReport {
    /// Metrics and solution. `cycles` and `maxcck` are synchronous-
    /// simulator notions and are reported as 0 here; `total_checks`, the
    /// message counters, and the fault counters are exact.
    pub outcome: TrialOutcome,
    /// Wall-clock duration of the run.
    pub wall_time: Duration,
    /// Total agent activations (batches processed, including starts).
    pub activations: u64,
    /// Whether the run ended globally quiescent: no message in flight, in
    /// a delay queue, or parked for retransmission.
    pub quiescent: bool,
    /// Stall-triggered recovery passes consumed.
    pub nudges: u64,
    /// Merged per-worker event log, canonically sorted and sealed with a
    /// `RunEnd`; empty unless [`AsyncConfig::record_trace`] was set.
    pub trace: Vec<TraceEvent>,
}

/// A routed message plus the virtual tick before which it must not be
/// delivered (the fault layer's delay/reordering mechanism).
struct Timed<M> {
    due: u64,
    env: Envelope<M>,
}

/// One worker's outgoing links, materialized on first use.
///
/// Workers used to pre-build a dense `Vec<Link>` of length n each —
/// O(agents²) total allocation before the first message flowed. A link's
/// stream seed is a pure function of `(run_seed, from, to)`, so lazy
/// creation changes nothing observable while keeping per-agent memory
/// proportional to the neighbors actually messaged.
struct SenderLinks {
    from: AgentId,
    policy: LinkPolicy,
    run_seed: u64,
    links: std::collections::BTreeMap<usize, Link>,
}

impl SenderLinks {
    fn new(from: AgentId, policy: LinkPolicy, run_seed: u64) -> Self {
        SenderLinks {
            from,
            policy,
            run_seed,
            links: std::collections::BTreeMap::new(),
        }
    }

    /// The link to recipient `to`, created on first touch. Callers must
    /// have validated `to` against the population already.
    fn link_mut(&mut self, to: usize) -> &mut Link {
        let from = self.from;
        let policy = self.policy;
        let run_seed = self.run_seed;
        self.links.entry(to).or_insert_with(|| {
            Link::new(policy, derive_link_seed(run_seed, from, AgentId::new(to as u32)))
        })
    }

    /// Fault counters summed over every link touched so far.
    fn totals(&self) -> LinkStats {
        let mut totals = LinkStats::default();
        for link in self.links.values() {
            totals.absorb(link.stats);
        }
        totals
    }
}

struct Shared {
    in_flight: AtomicI64,
    /// Dropped messages parked in worker-local recovery buffers, not
    /// counted in `in_flight` (they left the network at the drop point).
    pending_retransmits: AtomicI64,
    stop: AtomicBool,
    insoluble: AtomicBool,
    snapshot: Mutex<Assignment>,
    started: AtomicI64,
    activations: AtomicU64,
    /// Virtual clock for delivery deadlines, advanced by the observer.
    tick: AtomicU64,
    /// Recovery-pass generation; workers flush parked drops and call
    /// `on_nudge` when it grows past their local copy.
    nudge_epoch: AtomicU64,
    /// Total epochs acknowledged by workers (n acks per epoch).
    nudge_acks: AtomicU64,
    ok_messages: AtomicU64,
    nogood_messages: AtomicU64,
    other_messages: AtomicU64,
    /// Raw id + 1 of the first unroutable addressee; 0 = none. Set by
    /// worker threads, turned into [`RuntimeError::UnknownRecipient`] by
    /// the observer.
    bad_recipient: AtomicU64,
    /// Raw id + 1 of the first agent whose thread panicked; 0 = none. Set
    /// by a drop sentinel during unwind so the observer can stop the run
    /// without waiting out the wall clock.
    panicked: AtomicU64,
    /// Workers done dispatching. Each worker holds its receiver open
    /// until every peer passes this barrier, so no send in an
    /// error-free run can ever hit a disconnected channel — which
    /// would silently uncount an already-charged message and break the
    /// conservation identity (the link layer counts at route time, the
    /// class counters at enqueue time).
    exited: AtomicU64,
}

/// Set on unwind by each worker thread so a dying agent is noticed
/// immediately rather than at the wall-clock limit.
struct PanicSentinel<'a> {
    shared: &'a Shared,
    id: AgentId,
}

impl Drop for PanicSentinel<'_> {
    fn drop(&mut self) {
        if thread::panicking() {
            self.shared
                .panicked
                .compare_exchange(
                    0,
                    u64::from(self.id.raw()) + 1,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                )
                .ok();
            // Count the dying worker as exited so surviving peers do
            // not wait for it at the shutdown barrier (they also bail
            // on the `panicked` flag; the run reports an error either
            // way, so its accounting no longer matters).
            self.shared.exited.fetch_add(1, Ordering::SeqCst);
        }
    }
}

/// Runs `agents` asynchronously against `problem` until a stable solution,
/// a proof of insolubility, or the wall-clock limit, injecting link faults
/// according to `config.link`.
///
/// # Errors
///
/// [`RuntimeError::NonDenseAgentIds`] unless agent *i* reports id *i*
/// (dense routing, as in the synchronous simulator);
/// [`RuntimeError::UnknownRecipient`] when a message addresses an agent
/// outside the population; [`RuntimeError::AgentPanicked`] when an agent
/// thread dies mid-run (the remaining threads are shut down first).
pub fn run_async<A>(
    agents: Vec<A>,
    problem: &DistributedCsp,
    config: &AsyncConfig,
) -> Result<AsyncReport, RuntimeError>
where
    A: DistributedAgent + Send + 'static,
{
    for (position, agent) in agents.iter().enumerate() {
        if agent.id().index() != position {
            return Err(RuntimeError::NonDenseAgentIds {
                position,
                found: agent.id(),
            });
        }
    }
    let n = agents.len();
    let shared = Arc::new(Shared {
        in_flight: AtomicI64::new(0),
        pending_retransmits: AtomicI64::new(0),
        stop: AtomicBool::new(false),
        insoluble: AtomicBool::new(false),
        snapshot: Mutex::new(Assignment::empty(problem.num_vars())),
        started: AtomicI64::new(0),
        activations: AtomicU64::new(0),
        tick: AtomicU64::new(0),
        nudge_epoch: AtomicU64::new(0),
        nudge_acks: AtomicU64::new(0),
        ok_messages: AtomicU64::new(0),
        nogood_messages: AtomicU64::new(0),
        other_messages: AtomicU64::new(0),
        bad_recipient: AtomicU64::new(0),
        panicked: AtomicU64::new(0),
        exited: AtomicU64::new(0),
    });

    let (senders, receivers): (Vec<Sender<Timed<A::Message>>>, Vec<_>) =
        (0..n).map(|_| unbounded()).unzip();
    // One shared slice of senders: cloning a Vec per worker was another
    // O(agents²) allocation.
    let senders: Arc<[Sender<Timed<A::Message>>]> = senders.into();

    // lint: allow(timing): wall-clock cutoff is inherent to the async
    // runtime; the paper's cycle/maxcck metrics are sync-simulator-only.
    let start = Instant::now();
    let mut handles = Vec::with_capacity(n);
    for (i, (mut agent, rx)) in agents.into_iter().zip(receivers).enumerate() {
        let shared = Arc::clone(&shared);
        let senders = Arc::clone(&senders);
        let jitter = config.jitter_micros;
        let mut rng = SplitMix64::new(config.seed ^ (i as u64).wrapping_mul(0x2545_F491_4F6C_DD1D));
        let from = AgentId::new(i as u32);
        let mut links = SenderLinks::new(from, config.link, config.seed);
        let record = config.record_trace;
        handles.push(thread::spawn(move || {
            let _sentinel = PanicSentinel {
                shared: &shared,
                id: from,
            };
            let mut sink = if record {
                RingBuffer::new()
            } else {
                RingBuffer::disabled()
            };
            let mut checks_total: u64 = 0;
            worker(
                &mut agent,
                &rx,
                &senders,
                &shared,
                jitter,
                &mut rng,
                &mut links,
                &mut sink,
                &mut checks_total,
            );
            // Shutdown barrier: hold `rx` open until every worker is done
            // dispatching (see `Shared::exited`), so a peer mid-dispatch
            // never hits a disconnected channel and every message the
            // link layer charged is also counted by class. `panicked`
            // breaks the wait in case a dying peer's sentinel has not
            // unwound far enough to count it yet.
            shared.exited.fetch_add(1, Ordering::SeqCst);
            while (shared.exited.load(Ordering::SeqCst) as usize) < senders.len()
                && shared.panicked.load(Ordering::SeqCst) == 0
            {
                thread::sleep(Duration::from_micros(20));
            }
            drop(rx);
            let faults = links.totals();
            (agent, faults, checks_total, sink.take())
        }));
    }

    // Observer: wait for quiescent solution, insolubility, a structural
    // failure, or timeout, advancing the virtual delivery clock and
    // triggering recovery passes on stable stalls.
    let mut termination = Termination::CutOff;
    let mut error = None;
    let mut nudges: u64 = 0;
    loop {
        thread::sleep(Duration::from_micros(200));
        shared.tick.fetch_add(1, Ordering::SeqCst);
        if shared.insoluble.load(Ordering::SeqCst) {
            termination = Termination::Insoluble;
            break;
        }
        let bad = shared.bad_recipient.load(Ordering::SeqCst);
        if bad != 0 {
            error = Some(RuntimeError::UnknownRecipient {
                agent: AgentId::new((bad - 1) as u32),
            });
            break;
        }
        let panicked = shared.panicked.load(Ordering::SeqCst);
        if panicked != 0 {
            error = Some(RuntimeError::AgentPanicked {
                agent: AgentId::new((panicked - 1) as u32),
            });
            break;
        }
        let all_started = shared.started.load(Ordering::SeqCst) as usize == n;
        let quiescent = shared.in_flight.load(Ordering::SeqCst) == 0;
        if all_started && (quiescent || config.stop_on_first_solution) {
            let snapshot = shared.snapshot.lock();
            if problem.is_solution(&snapshot) {
                termination = Termination::Solved;
                break;
            }
        }
        // A quiescent non-solution can never progress on its own (agents
        // only act on messages): recover parked drops and staled views,
        // or finish right away instead of idling to the wall limit. The
        // ack handshake ensures the previous pass was fully absorbed
        // before the stall is judged again.
        if all_started
            && quiescent
            && shared.nudge_acks.load(Ordering::SeqCst) == nudges.saturating_mul(n as u64)
        {
            // Even perfect links can stall: a protocol may park itself
            // (AWC's repeated-nogood rule silences a deadended agent), so
            // recovery passes run regardless of the fault policy.
            if nudges < config.max_nudges {
                nudges += 1;
                shared.nudge_epoch.store(nudges, Ordering::SeqCst);
                continue;
            }
            termination = Termination::CutOff;
            break;
        }
        if start.elapsed() > config.max_wall_time {
            // One final consistent-snapshot check: quiescence and the
            // solution may have arrived between the check above and the
            // deadline, and a cutoff must not shadow a real solution.
            let all_started = shared.started.load(Ordering::SeqCst) as usize == n;
            let quiescent = shared.in_flight.load(Ordering::SeqCst) == 0;
            if all_started && (quiescent || config.stop_on_first_solution) {
                let snapshot = shared.snapshot.lock();
                if problem.is_solution(&snapshot) {
                    termination = Termination::Solved;
                }
            }
            break;
        }
    }
    shared.stop.store(true, Ordering::SeqCst);

    let mut metrics = RunMetrics::new(termination);
    let mut agent_stats = AgentStats::default();
    let mut link_totals = LinkStats::default();
    let mut trace: Vec<TraceEvent> = Vec::new();
    let final_tick = shared.tick.load(Ordering::SeqCst);
    for (position, handle) in handles.into_iter().enumerate() {
        // Join every thread even after a failure: a panic poisons one
        // agent's channel, not the process. The first failure wins.
        match handle.join() {
            Ok((mut agent, faults, checks_total, events)) => {
                metrics.total_checks += checks_total;
                // Checks the worker never got to stamp on a step (an
                // activation interrupted by shutdown) still count; give
                // them a final step event so the trace sums to
                // `total_checks`.
                let leftover = agent.take_checks();
                if leftover > 0 {
                    metrics.total_checks += leftover;
                    if config.record_trace {
                        trace.push(TraceEvent::AgentStep {
                            cycle: final_tick,
                            agent: agent.id(),
                            checks: leftover,
                        });
                    }
                }
                agent_stats.absorb(agent.stats());
                link_totals.absorb(faults);
                trace.extend(events);
            }
            Err(_) => {
                if error.is_none() {
                    error = Some(RuntimeError::AgentPanicked {
                        agent: AgentId::new(position as u32),
                    });
                }
            }
        }
    }
    if let Some(error) = error {
        return Err(error);
    }
    link_totals.fold_into(&mut agent_stats);
    metrics.ok_messages = shared.ok_messages.load(Ordering::SeqCst);
    metrics.nogood_messages = shared.nogood_messages.load(Ordering::SeqCst);
    metrics.other_messages = shared.other_messages.load(Ordering::SeqCst);
    metrics.nogoods_generated = agent_stats.nogoods_generated;
    metrics.redundant_nogoods = agent_stats.redundant_nogoods;
    metrics.largest_nogood = agent_stats.largest_nogood;
    metrics.messages_sent = agent_stats.messages_sent;
    metrics.messages_dropped = agent_stats.messages_dropped;
    metrics.messages_duplicated = agent_stats.messages_duplicated;
    metrics.messages_reordered = agent_stats.messages_reordered;
    metrics.messages_retransmitted = agent_stats.messages_retransmitted;
    metrics.max_delivery_delay = agent_stats.max_delivery_delay;

    let solution = if termination == Termination::Solved {
        Some(shared.snapshot.lock().clone())
    } else {
        None
    };
    let quiescent = shared.in_flight.load(Ordering::SeqCst) == 0
        && shared.pending_retransmits.load(Ordering::SeqCst) == 0;

    if config.record_trace {
        canonical_sort(&mut trace);
        trace.push(TraceEvent::RunEnd {
            cycle: metrics.cycles,
            runtime: RuntimeKind::Async,
            in_flight: shared.in_flight.load(Ordering::SeqCst).max(0) as u64,
            metrics: metrics.clone(),
        });
    }

    Ok(AsyncReport {
        outcome: TrialOutcome { metrics, solution },
        wall_time: start.elapsed(),
        activations: shared.activations.load(Ordering::SeqCst),
        quiescent,
        nudges,
        trace,
    })
}

#[allow(clippy::too_many_arguments)]
fn worker<A: DistributedAgent>(
    agent: &mut A,
    rx: &Receiver<Timed<A::Message>>,
    senders: &[Sender<Timed<A::Message>>],
    shared: &Shared,
    jitter_micros: u64,
    rng: &mut SplitMix64,
    links: &mut SenderLinks,
    sink: &mut RingBuffer,
    checks_total: &mut u64,
) {
    let mut parked: Vec<Envelope<A::Message>> = Vec::new();
    let mut held: Vec<Timed<A::Message>> = Vec::new();
    let mut seen_epoch: u64 = 0;
    let mut recorder = StepRecorder::new();

    // Start: announce initial values before reporting "started", so that
    // quiescence cannot be observed before the initial wave is in flight.
    let mut out = Outbox::new(agent.id());
    agent.on_start(&mut out);
    dispatch(out, links, &mut parked, senders, shared, sink);
    publish(agent, shared);
    let checks = agent.take_checks();
    *checks_total += checks;
    recorder.record_step(agent, shared.tick.load(Ordering::SeqCst), checks, sink);
    shared.activations.fetch_add(1, Ordering::SeqCst);
    shared.started.fetch_add(1, Ordering::SeqCst);
    if agent.detected_insoluble() {
        shared.insoluble.store(true, Ordering::SeqCst);
        return;
    }

    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        // Recovery pass: the observer saw a stable stall. Retransmit this
        // worker's parked drops and let the agent refresh its neighbors,
        // then acknowledge so the observer can judge the next stall.
        let epoch = shared.nudge_epoch.load(Ordering::SeqCst);
        if epoch > seen_epoch {
            seen_epoch = epoch;
            flush_parked(&mut parked, links, senders, shared, sink);
            let mut out = Outbox::new(agent.id());
            agent.on_nudge(&mut out);
            dispatch(out, links, &mut parked, senders, shared, sink);
            publish(agent, shared);
            let checks = agent.take_checks();
            *checks_total += checks;
            recorder.record_step(agent, shared.tick.load(Ordering::SeqCst), checks, sink);
            shared.nudge_acks.fetch_add(1, Ordering::SeqCst);
            // The nudge re-review can derive the empty nogood just like a
            // batch can; the observer polls this flag before the acks.
            if agent.detected_insoluble() {
                shared.insoluble.store(true, Ordering::SeqCst);
                return;
            }
        }

        // Messages ripen as the observer advances the virtual clock.
        let now = shared.tick.load(Ordering::SeqCst);
        let mut ready: Vec<Envelope<A::Message>> = Vec::new();
        let mut still_held = Vec::new();
        for timed in held.drain(..) {
            if timed.due <= now {
                ready.push(timed.env);
            } else {
                still_held.push(timed);
            }
        }
        held = still_held;

        // Block briefly for fresh traffic only when nothing is ripe, then
        // drain whatever else is there.
        if ready.is_empty() {
            match rx.recv_timeout(Duration::from_millis(1)) {
                Ok(timed) => {
                    if timed.due <= now {
                        ready.push(timed.env);
                    } else {
                        held.push(timed);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return,
            }
        }
        while let Ok(timed) = rx.try_recv() {
            if timed.due <= now {
                ready.push(timed.env);
            } else {
                held.push(timed);
            }
        }
        if ready.is_empty() {
            continue;
        }
        if jitter_micros > 0 {
            let delay = rng.next_below(jitter_micros);
            thread::sleep(Duration::from_micros(delay));
        }
        if sink.enabled() {
            for env in &ready {
                sink.record(TraceEvent::Delivered {
                    cycle: now,
                    from: env.from,
                    to: env.to,
                    class: env.payload.class(),
                });
            }
        }
        let consumed = ready.len() as i64;
        let mut out = Outbox::new(agent.id());
        agent.on_batch(ready, &mut out);
        // Enqueue reactions BEFORE decrementing what we consumed: in-flight
        // can only reach zero when the whole causal chain has drained.
        dispatch(out, links, &mut parked, senders, shared, sink);
        publish(agent, shared);
        let checks = agent.take_checks();
        *checks_total += checks;
        recorder.record_step(agent, now, checks, sink);
        shared.activations.fetch_add(1, Ordering::SeqCst);
        shared.in_flight.fetch_sub(consumed, Ordering::SeqCst);
        if agent.detected_insoluble() {
            shared.insoluble.store(true, Ordering::SeqCst);
            return;
        }
    }
}

fn count_class(class: MessageClass, shared: &Shared) {
    match class {
        MessageClass::Ok => shared.ok_messages.fetch_add(1, Ordering::SeqCst),
        MessageClass::Nogood => shared.nogood_messages.fetch_add(1, Ordering::SeqCst),
        MessageClass::Other => shared.other_messages.fetch_add(1, Ordering::SeqCst),
    };
}

/// Routes an outbox through the sender's links: the in-flight counter is
/// raised for every emitted message up front, lowered again at each drop
/// point (drops are parked for recovery) and failed send, and raised at
/// each duplication point. Message-class counters are charged only for
/// copies that actually reach a channel, so they always equal the
/// successfully enqueued traffic.
fn dispatch<M: Classify + Clone>(
    mut out: Outbox<M>,
    links: &mut SenderLinks,
    parked: &mut Vec<Envelope<M>>,
    senders: &[Sender<Timed<M>>],
    shared: &Shared,
    sink: &mut RingBuffer,
) {
    let msgs = out.drain();
    shared
        .in_flight
        .fetch_add(msgs.len() as i64, Ordering::SeqCst);
    let now = shared.tick.load(Ordering::SeqCst);
    for env in msgs {
        let to = env.to.index();
        let Some(sender) = senders.get(to) else {
            // Unroutable addressee: report it instead of panicking the
            // worker thread; the observer turns this into an error. The
            // message never entered the network, so it leaves the
            // in-flight count and stays out of the class counters.
            shared
                .bad_recipient
                .compare_exchange(0, u64::from(env.to.raw()) + 1, Ordering::SeqCst, Ordering::SeqCst)
                .ok();
            shared.in_flight.fetch_sub(1, Ordering::SeqCst);
            continue;
        };
        let decision = links.link_mut(to).route(now);
        if sink.enabled() {
            sink.record(TraceEvent::Sent {
                cycle: now,
                from: env.from,
                to: env.to,
                class: env.payload.class(),
            });
            for &kind in &decision.faults {
                sink.record(TraceEvent::Fault {
                    cycle: now,
                    from: env.from,
                    to: env.to,
                    class: env.payload.class(),
                    kind,
                });
            }
        }
        if decision.deliveries.is_empty() {
            // Dropped: decrement at the drop point and park for the
            // stall-triggered recovery pass.
            shared.in_flight.fetch_sub(1, Ordering::SeqCst);
            shared.pending_retransmits.fetch_add(1, Ordering::SeqCst);
            parked.push(env);
            continue;
        }
        let extra_copies = decision.deliveries.len().saturating_sub(1);
        if extra_copies > 0 {
            // Duplicates: increment at the dup point.
            shared
                .in_flight
                .fetch_add(extra_copies as i64, Ordering::SeqCst);
        }
        let class = env.payload.class();
        let last = decision.deliveries.len();
        let mut env = Some(env);
        for (index, due) in decision.deliveries.into_iter().enumerate() {
            let copy = if index + 1 == last {
                env.take()
            } else {
                env.clone()
            };
            let Some(copy) = copy else { continue };
            // The shutdown barrier keeps every receiver open until all
            // workers stop dispatching, so on error-free runs this send
            // cannot fail — the class counters stay equal to the
            // link-charged traffic and the conservation identity holds
            // exactly. A failure is only reachable when a peer panicked
            // mid-run (its channel died with it); the run then reports
            // `AgentPanicked` and the metrics are discarded, so we only
            // keep the in-flight count sane for the observer.
            if sender.send(Timed { due, env: copy }).is_ok() {
                count_class(class, shared);
            } else {
                shared.in_flight.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
}

/// Re-enqueues every parked (dropped) message through its link's
/// retransmission path. Parked messages re-enter the in-flight count at
/// the point they rejoin the network.
fn flush_parked<M: Classify + Clone>(
    parked: &mut Vec<Envelope<M>>,
    links: &mut SenderLinks,
    senders: &[Sender<Timed<M>>],
    shared: &Shared,
    sink: &mut RingBuffer,
) {
    if parked.is_empty() {
        return;
    }
    let now = shared.tick.load(Ordering::SeqCst);
    for env in parked.drain(..) {
        shared.pending_retransmits.fetch_sub(1, Ordering::SeqCst);
        let to = env.to.index();
        // Parked messages passed routing before they were dropped, so the
        // recipient exists; the guard only satisfies the panic-free zone.
        let Some(sender) = senders.get(to) else {
            continue;
        };
        let (due, faults) = links.link_mut(to).redeliver(now);
        if sink.enabled() {
            sink.record(TraceEvent::Fault {
                cycle: now,
                from: env.from,
                to: env.to,
                class: env.payload.class(),
                kind: FaultKind::Retransmitted,
            });
            for kind in faults {
                sink.record(TraceEvent::Fault {
                    cycle: now,
                    from: env.from,
                    to: env.to,
                    class: env.payload.class(),
                    kind,
                });
            }
        }
        shared.in_flight.fetch_add(1, Ordering::SeqCst);
        let class = env.payload.class();
        // As in `dispatch`: the shutdown barrier makes a failed send
        // unreachable outside a peer-panic run, whose metrics are
        // discarded anyway.
        if sender.send(Timed { due, env }).is_ok() {
            count_class(class, shared);
        } else {
            shared.in_flight.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

fn publish<A: DistributedAgent>(agent: &A, shared: &Shared) {
    let mut snapshot = shared.snapshot.lock();
    for vv in agent.assignments() {
        snapshot.set(vv.var, vv.value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::AgentStats;
    use crate::link::PPM;
    use crate::message::Classify;
    use discsp_core::{AgentId, Domain, Nogood, Value, VarValue, VariableId};

    /// Agents that must all agree on `true`: each starts `false` except
    /// agent 0, and flips to the max value it has heard, gossiping changes
    /// to the next agent in a ring.
    #[derive(Debug, Clone)]
    struct Gossip(Value);

    impl Classify for Gossip {
        fn class(&self) -> MessageClass {
            MessageClass::Ok
        }
    }

    struct RingAgent {
        id: AgentId,
        n: usize,
        value: Value,
    }

    impl RingAgent {
        fn next(&self) -> AgentId {
            AgentId::new(((self.id.index() + 1) % self.n) as u32)
        }
    }

    impl DistributedAgent for RingAgent {
        type Message = Gossip;

        fn id(&self) -> AgentId {
            self.id
        }

        fn on_start(&mut self, out: &mut Outbox<Gossip>) {
            out.send(self.next(), Gossip(self.value));
        }

        fn on_batch(&mut self, inbox: Vec<Envelope<Gossip>>, out: &mut Outbox<Gossip>) {
            let mut changed = false;
            for env in inbox {
                if env.payload.0 > self.value {
                    self.value = env.payload.0;
                    changed = true;
                }
            }
            if changed {
                out.send(self.next(), Gossip(self.value));
            }
        }

        fn on_nudge(&mut self, out: &mut Outbox<Gossip>) {
            out.send(self.next(), Gossip(self.value));
        }

        fn assignments(&self) -> Vec<VarValue> {
            vec![VarValue::new(VariableId::new(self.id.raw()), self.value)]
        }

        fn take_checks(&mut self) -> u64 {
            0
        }

        fn stats(&self) -> AgentStats {
            AgentStats::default()
        }
    }

    fn all_true_problem(n: usize) -> DistributedCsp {
        let mut b = DistributedCsp::builder();
        let vars: Vec<_> = (0..n).map(|_| b.variable(Domain::BOOL)).collect();
        for &v in &vars {
            b.nogood(Nogood::of([(v, Value::FALSE)])).unwrap();
        }
        b.build().unwrap()
    }

    fn ring(n: usize) -> Vec<RingAgent> {
        (0..n)
            .map(|i| RingAgent {
                id: AgentId::new(i as u32),
                n,
                value: Value::from_bool(i == 0),
            })
            .collect()
    }

    #[test]
    fn async_run_converges_to_quiescent_solution() {
        let problem = all_true_problem(5);
        let report = run_async(ring(5), &problem, &AsyncConfig::default()).expect("runs");
        assert_eq!(report.outcome.metrics.termination, Termination::Solved);
        let sol = report.outcome.solution.unwrap();
        for i in 0..5 {
            assert_eq!(sol.get(VariableId::new(i)), Some(Value::TRUE));
        }
        // 5 start messages + 4 propagation messages (agent 0 never flips).
        assert_eq!(report.outcome.metrics.ok_messages, 9);
        assert_eq!(report.outcome.metrics.messages_sent, 9);
        assert_eq!(report.outcome.metrics.messages_dropped, 0);
        assert!(report.activations >= 5);
        assert!(report.quiescent, "a stable solution implies quiescence");
    }

    #[test]
    fn async_run_with_jitter_still_converges() {
        // Generous wall limit so a loaded CI machine cannot push the
        // jittered run over the edge; the assertion of interest is the
        // explicit quiescence of the final state, not the timing.
        let problem = all_true_problem(4);
        let config = AsyncConfig {
            max_wall_time: Duration::from_secs(60),
            jitter_micros: 500,
            seed: 7,
            ..AsyncConfig::default()
        };
        let report = run_async(ring(4), &problem, &config).expect("runs");
        assert_eq!(report.outcome.metrics.termination, Termination::Solved);
        assert!(report.quiescent);
    }

    #[test]
    fn async_run_cuts_off_unsolvable_gossip_on_stall() {
        // Nobody holds `true`, so the ring can never satisfy the problem;
        // gossip quiesces at all-false, which is not a solution. The
        // stall is detected as soon as the system goes quiet; the bounded
        // recovery passes (gossip re-announces, state never changes) burn
        // through quickly, so the cutoff still lands well inside the
        // (deliberately generous) wall limit and cannot flake on a
        // loaded machine.
        let problem = all_true_problem(3);
        let mut agents = ring(3);
        agents[0].value = Value::FALSE;
        let config = AsyncConfig {
            max_wall_time: Duration::from_secs(60),
            ..AsyncConfig::default()
        };
        let report = run_async(agents, &problem, &config).expect("runs");
        assert_eq!(report.outcome.metrics.termination, Termination::CutOff);
        assert!(report.outcome.solution.is_none());
        assert!(report.quiescent, "cutoff must come from a detected stall");
        assert_eq!(
            report.nudges, config.max_nudges,
            "a perfect-link stall must exhaust recovery before cutoff"
        );
        assert!(
            report.wall_time < Duration::from_secs(60),
            "stall detection must beat the wall-clock limit"
        );
    }

    #[test]
    fn async_run_solves_under_total_first_drop() {
        // Every link drops every first transmission; the recovery pass
        // retransmits, so gossip still completes and the class counters
        // match the enqueued copies exactly.
        let problem = all_true_problem(4);
        let config = AsyncConfig {
            link: LinkPolicy::lossy(PPM),
            seed: 5,
            ..AsyncConfig::default()
        };
        let report = run_async(ring(4), &problem, &config).expect("runs");
        let m = &report.outcome.metrics;
        assert_eq!(m.termination, Termination::Solved);
        assert!(report.nudges > 0, "recovery must have fired");
        assert_eq!(m.messages_dropped, m.messages_sent);
        assert_eq!(
            m.total_messages(),
            m.messages_sent - m.messages_dropped
                + m.messages_duplicated
                + m.messages_retransmitted,
        );
    }

    #[test]
    fn async_lossy_run_surfaces_an_auditable_trace() {
        // Regression: the threaded runtime used to record nothing at all —
        // `AsyncReport` had no trace field — so lossy async failures could
        // not be inspected. A seeded lossy run must now surface a
        // non-empty trace that passes the accounting audit.
        let problem = all_true_problem(4);
        let config = AsyncConfig {
            link: LinkPolicy::lossy(300_000).with_delay(0, 2),
            seed: 9,
            record_trace: true,
            max_wall_time: Duration::from_secs(60),
            ..AsyncConfig::default()
        };
        let report = run_async(ring(4), &problem, &config).expect("runs");
        assert!(
            !report.trace.is_empty(),
            "async runs must surface their trace"
        );
        assert!(report
            .trace
            .iter()
            .any(|e| matches!(e, discsp_trace::TraceEvent::Sent { .. })));
        assert!(report
            .trace
            .iter()
            .any(|e| matches!(e, discsp_trace::TraceEvent::Delivered { .. })));
        let audit = discsp_trace::audit(&report.trace).expect("trace is sealed by RunEnd");
        assert!(audit.passed(), "audit failures: {:?}", audit.failures);
        assert_eq!(audit.metrics, report.outcome.metrics);
    }

    /// Agents that flood every peer and one of which declares the
    /// problem insoluble as soon as it has heard anything. Its worker
    /// then leaves the receive loop while the peers are still
    /// mid-storm — the exact window in which a dropped receiver used to
    /// make sends fail after the link layer had already charged them,
    /// silently breaking the conservation identity.
    struct StormAgent {
        id: AgentId,
        n: usize,
        budget: u32,
        heard: u32,
        insoluble_after: Option<u32>,
    }

    impl StormAgent {
        fn flood(&self, out: &mut Outbox<Gossip>) {
            for j in 0..self.n {
                if j != self.id.index() {
                    out.send(AgentId::new(j as u32), Gossip(Value::TRUE));
                }
            }
        }
    }

    impl DistributedAgent for StormAgent {
        type Message = Gossip;

        fn id(&self) -> AgentId {
            self.id
        }

        fn on_start(&mut self, out: &mut Outbox<Gossip>) {
            self.flood(out);
        }

        fn on_batch(&mut self, inbox: Vec<Envelope<Gossip>>, out: &mut Outbox<Gossip>) {
            self.heard += inbox.len() as u32;
            for _ in 0..inbox.len() {
                if self.budget == 0 {
                    break;
                }
                self.budget -= 1;
                self.flood(out);
            }
        }

        fn on_nudge(&mut self, out: &mut Outbox<Gossip>) {
            if self.budget > 0 {
                self.budget -= 1;
                self.flood(out);
            }
        }

        fn detected_insoluble(&self) -> bool {
            matches!(self.insoluble_after, Some(k) if self.heard >= k)
        }

        fn assignments(&self) -> Vec<VarValue> {
            Vec::new()
        }

        fn take_checks(&mut self) -> u64 {
            0
        }

        fn stats(&self) -> AgentStats {
            AgentStats::default()
        }
    }

    #[test]
    fn conservation_holds_with_drop_dup_delay_on_same_link() {
        // Satellite regression: every link carries drops, duplication,
        // and delay at once, and the identity
        // `total = sent - dropped + duplicated + retransmitted`
        // must still hold exactly on the reported metrics (and pass the
        // trace audit, which recomputes each term from events).
        let problem = all_true_problem(5);
        let (mut dropped, mut duplicated, mut delayed) = (0u64, 0u64, 0u64);
        for seed in 0..4u64 {
            let config = AsyncConfig {
                link: LinkPolicy::lossy(250_000)
                    .with_duplication(250_000)
                    .with_delay(0, 3),
                seed,
                record_trace: true,
                max_wall_time: Duration::from_secs(60),
                ..AsyncConfig::default()
            };
            let report = run_async(ring(5), &problem, &config).expect("runs");
            let m = &report.outcome.metrics;
            dropped += m.messages_dropped;
            duplicated += m.messages_duplicated;
            delayed += m.max_delivery_delay;
            assert_eq!(
                m.total_messages(),
                m.messages_sent - m.messages_dropped
                    + m.messages_duplicated
                    + m.messages_retransmitted,
                "seed {seed}"
            );
            let audit = discsp_trace::audit(&report.trace).expect("trace is sealed by RunEnd");
            assert!(audit.passed(), "seed {seed}: {:?}", audit.failures);
        }
        assert!(
            dropped > 0 && duplicated > 0 && delayed > 0,
            "the seeds must exercise all three fault kinds \
             (dropped {dropped}, duplicated {duplicated}, max delay {delayed})"
        );
    }

    #[test]
    fn early_exiting_worker_does_not_uncount_charged_sends() {
        // Regression for the shutdown accounting hole: before the exit
        // barrier, a worker that detected insolubility dropped its
        // receiver on the spot, so peers still storming at it had sends
        // fail *after* `Link::route` charged `messages_sent` (and
        // recorded the `Sent` trace event) but *before* the class
        // counters were bumped — under-counting `total_messages` and
        // breaking conservation. The receivers now stay open until every
        // worker is done dispatching, so the identity is exact even on
        // insoluble runs that tear down mid-storm.
        let problem = all_true_problem(3);
        for seed in 0..4u64 {
            let agents: Vec<StormAgent> = (0..3)
                .map(|i| StormAgent {
                    id: AgentId::new(i as u32),
                    n: 3,
                    budget: 200,
                    heard: 0,
                    insoluble_after: (i == 0).then_some(1),
                })
                .collect();
            let config = AsyncConfig {
                link: LinkPolicy::lossy(200_000)
                    .with_duplication(200_000)
                    .with_delay(0, 2),
                seed,
                record_trace: true,
                max_wall_time: Duration::from_secs(60),
                ..AsyncConfig::default()
            };
            let report = run_async(agents, &problem, &config).expect("runs");
            let m = &report.outcome.metrics;
            assert_eq!(m.termination, Termination::Insoluble, "seed {seed}");
            assert_eq!(
                m.total_messages(),
                m.messages_sent - m.messages_dropped
                    + m.messages_duplicated
                    + m.messages_retransmitted,
                "seed {seed}: early-exit teardown uncounted a charged send"
            );
            let audit = discsp_trace::audit(&report.trace).expect("trace is sealed by RunEnd");
            assert!(audit.passed(), "seed {seed}: {:?}", audit.failures);
        }
    }

    #[test]
    fn async_run_solves_under_delay_and_reordering() {
        let problem = all_true_problem(5);
        for seed in 0..3u64 {
            let config = AsyncConfig {
                link: LinkPolicy::delayed(0, 3).with_reordering(2),
                seed,
                ..AsyncConfig::default()
            };
            let report = run_async(ring(5), &problem, &config).expect("runs");
            assert_eq!(
                report.outcome.metrics.termination,
                Termination::Solved,
                "seed {seed}"
            );
            assert!(report.quiescent, "seed {seed}");
        }
    }
}
