//! The shared agent-step recorder: one emission path for the per-step
//! trace events, used by all four executors.
//!
//! Before this existed, `ValueChanged` was emitted only by the
//! synchronous simulator (by diffing a global assignment snapshot), so
//! virtual/async/net traces of the *same* seeded problem carried no
//! value changes and traces were not schema-comparable across runtimes.
//! The recorder centralizes the diffing: every executor calls
//! [`StepRecorder::record_step`] right after an agent activation and
//! gets identical `AgentStep` / `ValueChanged` / `PriorityChanged` /
//! `NogoodLearned` events.

use std::collections::BTreeMap;

use discsp_core::Value;
use discsp_trace::{TraceEvent, TraceSink};

use crate::agent::{AgentNote, DistributedAgent};

/// Per-run memory of each variable's and agent's last observed state,
/// used to emit change events only on actual changes.
#[derive(Debug, Default)]
pub struct StepRecorder {
    last_values: BTreeMap<u32, Value>,
    last_priority: BTreeMap<u32, u64>,
}

impl StepRecorder {
    /// A recorder with no observations yet (every variable's first
    /// recorded value emits a `ValueChanged` with `old: None`).
    pub fn new() -> Self {
        StepRecorder::default()
    }

    /// Records one agent activation: drains the agent's notes (always —
    /// even with tracing off, so the backlog cannot grow), then emits
    /// `AgentStep`, per-variable `ValueChanged`, `PriorityChanged` on
    /// observed change, and one `NogoodLearned` per note.
    ///
    /// `checks` is the check count the *caller* already drained via
    /// `take_checks` for this step (the runtimes charge it to their own
    /// metrics; the recorder must not drain it twice).
    pub fn record_step<A: DistributedAgent>(
        &mut self,
        agent: &mut A,
        cycle: u64,
        checks: u64,
        sink: &mut dyn TraceSink,
    ) {
        let notes = agent.drain_notes();
        if !sink.enabled() {
            return;
        }
        let id = agent.id();
        sink.record(TraceEvent::AgentStep {
            cycle,
            agent: id,
            checks,
        });
        for vv in agent.assignments() {
            let old = self.last_values.insert(vv.var.raw(), vv.value);
            if old != Some(vv.value) {
                sink.record(TraceEvent::ValueChanged {
                    cycle,
                    var: vv.var,
                    old,
                    new: vv.value,
                });
            }
        }
        if let Some(priority) = agent.current_priority() {
            let old = self.last_priority.insert(id.raw(), priority);
            // The first observation is the starting priority, not a change.
            if old.is_some() && old != Some(priority) {
                sink.record(TraceEvent::PriorityChanged {
                    cycle,
                    agent: id,
                    priority,
                });
            }
        }
        for note in notes {
            match note {
                AgentNote::NogoodLearned { size } => {
                    sink.record(TraceEvent::NogoodLearned {
                        cycle,
                        agent: id,
                        size,
                    });
                }
                AgentNote::NogoodsForgotten { count } => {
                    sink.record(TraceEvent::NogoodForgotten {
                        cycle,
                        agent: id,
                        count,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::{AgentStats, Outbox};
    use crate::message::{Classify, Envelope, MessageClass};
    use discsp_core::{AgentId, VarValue, VariableId};

    #[derive(Debug, Clone)]
    struct Noop;

    impl Classify for Noop {
        fn class(&self) -> MessageClass {
            MessageClass::Other
        }
    }

    struct Toy {
        id: AgentId,
        value: Value,
        priority: u64,
        notes: Vec<AgentNote>,
    }

    impl DistributedAgent for Toy {
        type Message = Noop;

        fn id(&self) -> AgentId {
            self.id
        }

        fn on_start(&mut self, _out: &mut Outbox<Noop>) {}

        fn on_batch(&mut self, _inbox: Vec<Envelope<Noop>>, _out: &mut Outbox<Noop>) {}

        fn assignments(&self) -> Vec<VarValue> {
            vec![VarValue {
                var: VariableId::new(self.id.raw()),
                value: self.value,
            }]
        }

        fn take_checks(&mut self) -> u64 {
            0
        }

        fn stats(&self) -> AgentStats {
            AgentStats::default()
        }

        fn current_priority(&self) -> Option<u64> {
            Some(self.priority)
        }

        fn drain_notes(&mut self) -> Vec<AgentNote> {
            std::mem::take(&mut self.notes)
        }
    }

    #[test]
    fn emits_changes_only_on_change() {
        let mut agent = Toy {
            id: AgentId::new(0),
            value: Value::new(1),
            priority: 0,
            notes: vec![],
        };
        let mut recorder = StepRecorder::new();
        let mut sink = discsp_trace::RingBuffer::new();

        recorder.record_step(&mut agent, 0, 5, &mut sink);
        // Same state again: only the step itself.
        recorder.record_step(&mut agent, 1, 2, &mut sink);
        // Change value and priority, learn a nogood.
        agent.value = Value::new(2);
        agent.priority = 3;
        agent.notes.push(AgentNote::NogoodLearned { size: 4 });
        recorder.record_step(&mut agent, 2, 0, &mut sink);

        let events = sink.take();
        let steps = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::AgentStep { .. }))
            .count();
        assert_eq!(steps, 3);
        assert!(events.contains(&TraceEvent::ValueChanged {
            cycle: 0,
            var: VariableId::new(0),
            old: None,
            new: Value::new(1),
        }));
        assert!(events.contains(&TraceEvent::ValueChanged {
            cycle: 2,
            var: VariableId::new(0),
            old: Some(Value::new(1)),
            new: Value::new(2),
        }));
        assert!(events.contains(&TraceEvent::PriorityChanged {
            cycle: 2,
            agent: AgentId::new(0),
            priority: 3,
        }));
        assert!(events.contains(&TraceEvent::NogoodLearned {
            cycle: 2,
            agent: AgentId::new(0),
            size: 4,
        }));
        // First priority observation is not a change.
        assert!(!events.contains(&TraceEvent::PriorityChanged {
            cycle: 0,
            agent: AgentId::new(0),
            priority: 0,
        }));
    }

    #[test]
    fn disabled_sink_still_drains_notes() {
        let mut agent = Toy {
            id: AgentId::new(0),
            value: Value::new(0),
            priority: 0,
            notes: vec![AgentNote::NogoodLearned { size: 1 }],
        };
        let mut recorder = StepRecorder::new();
        let mut sink = discsp_trace::RingBuffer::disabled();
        recorder.record_step(&mut agent, 0, 0, &mut sink);
        assert!(agent.notes.is_empty(), "notes drained even with tracing off");
        assert!(sink.is_empty());
    }
}
