//! The deterministic fault-injecting link layer.
//!
//! The paper's §5 claim — the algorithms "are designed for a fully
//! asynchronous distributed system, and thereby can work on any type of
//! distributed systems" — is only demonstrated by running them over links
//! that misbehave. This module models one directed link per ordered agent
//! pair with a [`LinkPolicy`]: fixed or uniform delivery delay in
//! *virtual ticks*, drop probability, duplication probability, and a
//! reordering window. Every fault decision is drawn from a per-link
//! [`SplitMix64`] stream derived from the run seed alone
//! ([`derive_link_seed`]), so any observed failure is replayable from
//! `(seed, policy)` — no wall clock, no OS entropy.
//!
//! Time here is a `u64` **virtual tick**, never `std::time::Instant`: the
//! synchronous-style executor ([`run_virtual`]) advances ticks as the
//! event queue drains, and the threaded runtime advances a shared atomic
//! tick from its observer loop. That is why this file is exempted from
//! `discsp-lint` rule D2 *by name* in `crates/lint/src/rules.rs` — the
//! tick arithmetic below is the sanctioned replacement for wall time.
//!
//! Dropped messages are not lost forever: real DisCSP correctness proofs
//! assume eventual delivery (finite but arbitrary delay), so the link
//! layer parks drops in a per-link recovery buffer and retransmits them
//! when the runtime detects a stall — the transport keeps the protocol's
//! liveness guarantee the way TCP does over a lossy wire, while every
//! fault stays observable in the counters.

use std::collections::BTreeMap;

use discsp_core::{
    AgentId, Assignment, DistributedCsp, RunMetrics, Termination, TrialOutcome,
};
use serde::{Deserialize, Serialize};

use discsp_trace::{FaultKind, RuntimeKind, TraceEvent, TraceSink};

use crate::agent::{AgentStats, DistributedAgent, Outbox};
use crate::error::RuntimeError;
use crate::recorder::StepRecorder;
use crate::router::Router;
use crate::schedule::{FaultAction, FaultSchedule};
use crate::seed::SplitMix64;

/// Probabilities are expressed in parts per million so the whole policy
/// is integer-exact, `Eq`, and hashable-free of float edge cases.
pub const PPM: u32 = 1_000_000;

/// Per-link fault policy. The default is a perfect link: instant,
/// lossless, ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkPolicy {
    /// Minimum delivery delay, in virtual ticks.
    pub delay_min: u64,
    /// Maximum delivery delay, in virtual ticks (uniform in
    /// `delay_min..=delay_max`; equal bounds give a fixed delay).
    pub delay_max: u64,
    /// Drop probability in parts per million ([`PPM`] = always drop).
    pub drop_ppm: u32,
    /// Duplication probability in parts per million (one extra copy).
    pub dup_ppm: u32,
    /// Reordering window: each message gets an extra uniform delay in
    /// `0..=reorder_window` ticks, letting later messages overtake
    /// earlier ones on the same link.
    pub reorder_window: u64,
}

impl Default for LinkPolicy {
    fn default() -> Self {
        LinkPolicy::perfect()
    }
}

impl LinkPolicy {
    /// An instant, lossless, ordered link (the pre-fault-layer behavior).
    pub const fn perfect() -> Self {
        LinkPolicy {
            delay_min: 0,
            delay_max: 0,
            drop_ppm: 0,
            dup_ppm: 0,
            reorder_window: 0,
        }
    }

    /// A link that drops each message with probability `drop_ppm`/10⁶.
    pub const fn lossy(drop_ppm: u32) -> Self {
        LinkPolicy {
            drop_ppm,
            ..LinkPolicy::perfect()
        }
    }

    /// A link delivering after a uniform `min..=max`-tick delay.
    pub const fn delayed(min: u64, max: u64) -> Self {
        LinkPolicy {
            delay_min: min,
            delay_max: max,
            ..LinkPolicy::perfect()
        }
    }

    /// A link that reorders within a `window`-tick window.
    pub const fn reordering(window: u64) -> Self {
        LinkPolicy {
            reorder_window: window,
            ..LinkPolicy::perfect()
        }
    }

    /// Sets the drop probability (parts per million).
    pub const fn with_drop(mut self, drop_ppm: u32) -> Self {
        self.drop_ppm = drop_ppm;
        self
    }

    /// Sets the duplication probability (parts per million).
    pub const fn with_duplication(mut self, dup_ppm: u32) -> Self {
        self.dup_ppm = dup_ppm;
        self
    }

    /// Sets the delay bounds (virtual ticks).
    pub const fn with_delay(mut self, min: u64, max: u64) -> Self {
        self.delay_min = min;
        self.delay_max = max;
        self
    }

    /// Sets the reordering window (virtual ticks).
    pub const fn with_reordering(mut self, window: u64) -> Self {
        self.reorder_window = window;
        self
    }

    /// Whether this policy can never inject a fault (fast path: the
    /// runtimes skip the per-message lottery entirely).
    pub const fn is_perfect(&self) -> bool {
        self.delay_min == 0
            && self.delay_max == 0
            && self.drop_ppm == 0
            && self.dup_ppm == 0
            && self.reorder_window == 0
    }
}

/// Monotone per-link fault counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkStats {
    /// Messages handed to this link.
    pub sent: u64,
    /// Messages dropped by the fault lottery.
    pub dropped: u64,
    /// Extra copies created by duplication.
    pub duplicated: u64,
    /// Copies assigned a due tick that overtakes an earlier message.
    pub reordered: u64,
    /// Previously dropped messages re-enqueued by the recovery pass.
    pub retransmitted: u64,
    /// Largest single assigned delivery delay, in ticks.
    pub max_delay: u64,
}

impl LinkStats {
    /// Accumulates `other` into `self` (sums; max for `max_delay`).
    pub fn absorb(&mut self, other: LinkStats) {
        self.sent += other.sent;
        self.dropped += other.dropped;
        self.duplicated += other.duplicated;
        self.reordered += other.reordered;
        self.retransmitted += other.retransmitted;
        self.max_delay = self.max_delay.max(other.max_delay);
    }

    /// Folds these link counters into an [`AgentStats`] record (the
    /// sender-side attribution surfaced through [`RunMetrics`]).
    pub fn fold_into(&self, stats: &mut AgentStats) {
        stats.messages_sent += self.sent;
        stats.messages_dropped += self.dropped;
        stats.messages_duplicated += self.duplicated;
        stats.messages_reordered += self.reordered;
        stats.messages_retransmitted += self.retransmitted;
        stats.max_delivery_delay = stats.max_delivery_delay.max(self.max_delay);
    }
}

/// The fate of one message offered to a link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteDecision {
    /// Due tick of each copy to enqueue. Empty means the message was
    /// dropped (and should be parked for retransmission).
    pub deliveries: Vec<u64>,
    /// Faults injected into this message, for trace recording.
    pub faults: Vec<FaultKind>,
}

/// One directed link with its policy, its private random stream, and its
/// fault counters.
///
/// A link runs in one of two modes. In **lottery** mode (the default,
/// [`Link::new`]) every fault is drawn from the seeded stream according
/// to the [`LinkPolicy`]. In **scripted** mode ([`Link::scripted`]) the
/// stream is never consulted: an explicit `call → action` script decides
/// the fate of each message by its 0-based call index, and every
/// unscripted call delivers perfectly. Both modes append each injected
/// fault to the link's [`fault log`](Link::fault_log), so a lottery
/// run's log replayed as a script reproduces the run bit-for-bit.
#[derive(Debug, Clone)]
pub struct Link {
    policy: LinkPolicy,
    rng: SplitMix64,
    /// Scripted mode: the fate of each call index. `None` = lottery mode.
    script: Option<BTreeMap<u64, FaultAction>>,
    /// Calls served so far (fresh sends and retransmissions share it).
    calls: u64,
    /// Every fault injected so far, by the call index that suffered it.
    log: Vec<(u64, FaultAction)>,
    /// Largest due tick assigned so far (reordering detection).
    max_due: u64,
    /// Counters, monotone over the link's lifetime.
    pub stats: LinkStats,
}

impl Link {
    /// Creates a link following `policy`, drawing from `seed`.
    pub fn new(policy: LinkPolicy, seed: u64) -> Self {
        Link {
            policy,
            rng: SplitMix64::new(seed),
            script: None,
            calls: 0,
            log: Vec::new(),
            max_due: 0,
            stats: LinkStats::default(),
        }
    }

    /// Creates a scripted link: call `k` suffers `script[k]`, every other
    /// call delivers perfectly. No random stream is ever consulted.
    pub fn scripted(script: BTreeMap<u64, FaultAction>) -> Self {
        Link {
            script: Some(script),
            ..Link::new(LinkPolicy::perfect(), 0)
        }
    }

    /// The policy this link follows (perfect in scripted mode).
    pub fn policy(&self) -> &LinkPolicy {
        &self.policy
    }

    /// The faults this link actually injected, as `(call, action)` pairs
    /// in call order. Feeding this log back through [`Link::scripted`]
    /// replays the link's behavior exactly, draw for draw.
    pub fn fault_log(&self) -> &[(u64, FaultAction)] {
        &self.log
    }

    fn base_delay(&mut self) -> u64 {
        let LinkPolicy {
            delay_min,
            delay_max,
            reorder_window,
            ..
        } = self.policy;
        let mut delay = delay_min;
        if delay_max > delay_min {
            delay += self.rng.next_below(delay_max - delay_min + 1);
        }
        if reorder_window > 0 {
            delay += self.rng.next_below(reorder_window + 1);
        }
        delay
    }

    /// Registers one copy due at `now + 1 + delay` (every hop costs one
    /// base tick, as in the synchronous simulator's "sent in cycle *k*,
    /// readable in *k + 1*"), updating the reorder bookkeeping, and
    /// returns the due tick.
    fn assign(&mut self, now: u64, delay: u64, faults: &mut Vec<FaultKind>) -> u64 {
        let due = now + 1 + delay;
        self.stats.max_delay = self.stats.max_delay.max(delay);
        if delay > 0 {
            faults.push(FaultKind::Delayed(delay));
        }
        if due < self.max_due {
            self.stats.reordered += 1;
            faults.push(FaultKind::Reordered);
        }
        self.max_due = self.max_due.max(due);
        due
    }

    /// Decides the fate of the next message offered to this link at
    /// virtual time `now`. Deterministic: the k-th call on a link built
    /// from a given `(policy, seed)` — or a given script — always
    /// returns the same decision.
    pub fn route(&mut self, now: u64) -> RouteDecision {
        self.stats.sent += 1;
        let call = self.calls;
        self.calls += 1;
        if let Some(script) = &self.script {
            let action = script.get(&call).copied();
            return self.route_scripted(now, call, action);
        }
        if self.policy.is_perfect() {
            // No lottery draws: the stream stays untouched, so enabling a
            // fault on *another* link never perturbs this one.
            self.max_due = self.max_due.max(now + 1);
            return RouteDecision {
                deliveries: vec![now + 1],
                faults: Vec::new(),
            };
        }
        let mut faults = Vec::new();
        if self.policy.drop_ppm > 0
            && self.rng.next_below(u64::from(PPM)) < u64::from(self.policy.drop_ppm)
        {
            self.stats.dropped += 1;
            faults.push(FaultKind::Dropped);
            self.log.push((call, FaultAction::Drop));
            return RouteDecision {
                deliveries: Vec::new(),
                faults,
            };
        }
        let dup = self.policy.dup_ppm > 0
            && self.rng.next_below(u64::from(PPM)) < u64::from(self.policy.dup_ppm);
        if dup {
            self.stats.duplicated += 1;
            faults.push(FaultKind::Duplicated);
            // Draw order matches the pre-log code: one base delay per
            // copy, first copy first.
            let first = self.base_delay();
            let second = self.base_delay();
            self.log.push((call, FaultAction::Duplicate { first, second }));
            let deliveries = vec![
                self.assign(now, first, &mut faults),
                self.assign(now, second, &mut faults),
            ];
            return RouteDecision { deliveries, faults };
        }
        let delay = self.base_delay();
        if delay > 0 {
            self.log.push((call, FaultAction::Delay(delay)));
        }
        let deliveries = vec![self.assign(now, delay, &mut faults)];
        RouteDecision { deliveries, faults }
    }

    /// The scripted-mode fate of call `call`. Unscripted calls still run
    /// the reorder bookkeeping with zero delay: a lottery link under a
    /// `delay_min == 0` policy counts a zero-delay message that overtakes
    /// a delayed one as reordered, so replaying its log must too.
    fn route_scripted(
        &mut self,
        now: u64,
        call: u64,
        action: Option<FaultAction>,
    ) -> RouteDecision {
        let mut faults = Vec::new();
        let deliveries = match action {
            None => vec![self.assign(now, 0, &mut faults)],
            Some(FaultAction::Drop) => {
                self.stats.dropped += 1;
                faults.push(FaultKind::Dropped);
                self.log.push((call, FaultAction::Drop));
                Vec::new()
            }
            Some(FaultAction::Delay(delay)) => {
                if delay > 0 {
                    self.log.push((call, FaultAction::Delay(delay)));
                }
                vec![self.assign(now, delay, &mut faults)]
            }
            Some(FaultAction::Duplicate { first, second }) => {
                self.stats.duplicated += 1;
                faults.push(FaultKind::Duplicated);
                self.log.push((call, FaultAction::Duplicate { first, second }));
                vec![
                    self.assign(now, first, &mut faults),
                    self.assign(now, second, &mut faults),
                ]
            }
        };
        RouteDecision { deliveries, faults }
    }

    /// Assigns a due tick to a retransmitted (previously dropped)
    /// message. Retransmission bypasses the drop and duplication lottery
    /// — the recovery pass exists to guarantee eventual delivery — but
    /// still pays the link's delay; the delay/reorder faults injected on
    /// this second pass are returned so the caller can record them (the
    /// counters already include them, and the trace must explain every
    /// counter). In scripted mode a `Delay` event at the retransmission's
    /// call index delays it; `Drop` cannot recur (eventual delivery), so
    /// any other scripted action delays by its first delay field or zero.
    pub fn redeliver(&mut self, now: u64) -> (u64, Vec<FaultKind>) {
        self.stats.retransmitted += 1;
        let call = self.calls;
        self.calls += 1;
        let delay = if let Some(script) = &self.script {
            match script.get(&call) {
                Some(FaultAction::Delay(d)) => *d,
                Some(FaultAction::Duplicate { first, .. }) => *first,
                Some(FaultAction::Drop) | None => 0,
            }
        } else if self.policy.is_perfect() {
            0
        } else {
            self.base_delay()
        };
        if delay > 0 {
            self.log.push((call, FaultAction::Delay(delay)));
        }
        let mut faults = Vec::new();
        let due = self.assign(now, delay, &mut faults);
        (due, faults)
    }
}

/// Derives the seed of the directed link `from → to` for a run seeded
/// with `run_seed`. Distinct links get unrelated streams; the same
/// `(run_seed, from, to)` always yields the same stream.
pub fn derive_link_seed(run_seed: u64, from: AgentId, to: AgentId) -> u64 {
    let mut a = SplitMix64::new(
        run_seed ^ u64::from(from.raw()).wrapping_mul(0xD192_ED03_3709_27AD),
    );
    let mixed = a.next_u64();
    let mut b = SplitMix64::new(mixed ^ u64::from(to.raw()).wrapping_mul(0x8864_A2F4_0E72_7F91));
    b.next_u64()
}

/// Configuration of a deterministic faulty-link run.
#[derive(Debug, Clone)]
pub struct VirtualConfig {
    /// Seed deriving every per-link fault stream and the same-tick
    /// delivery order.
    pub seed: u64,
    /// Fault policy applied to every link.
    pub link: LinkPolicy,
    /// Scripted per-event faults. When set, `link` is ignored: the
    /// schedule decides every fault and all other messages deliver
    /// perfectly (the seed still fixes same-tick delivery order, so a
    /// recorded `fault_log` replays its run exactly under the same seed).
    pub schedule: Option<FaultSchedule>,
    /// Tick budget; the run reports a cutoff beyond it.
    pub max_ticks: u64,
    /// How many stall-triggered recovery passes (retransmission flushes
    /// and agent refreshes) to run before giving up.
    pub max_nudges: u64,
    /// Stop at the first globally consistent snapshot instead of
    /// requiring the event queue to drain (required for protocols that
    /// never go quiet, such as distributed breakout).
    pub stop_on_first_solution: bool,
    /// Record delivery and fault events into the report's trace.
    pub record_trace: bool,
}

impl Default for VirtualConfig {
    fn default() -> Self {
        VirtualConfig {
            seed: 0,
            link: LinkPolicy::perfect(),
            schedule: None,
            max_ticks: 1_000_000,
            max_nudges: 64,
            stop_on_first_solution: false,
            record_trace: false,
        }
    }
}

/// Result of a [`run_virtual`] execution.
#[derive(Debug, Clone)]
pub struct VirtualReport {
    /// Metrics and solution. `cycles` reports the final virtual tick;
    /// the fault counters are exact and replayable.
    pub outcome: TrialOutcome,
    /// Final virtual tick.
    pub ticks: u64,
    /// Agent activations (batches processed, including starts).
    pub activations: u64,
    /// Stall-triggered recovery passes consumed.
    pub nudges: u64,
    /// Event log; empty unless `record_trace` was set.
    pub trace: Vec<TraceEvent>,
    /// Every fault the run actually injected, as a replayable schedule:
    /// re-running with `schedule: Some(fault_log)` under the same seed
    /// reproduces this run bit-for-bit, with no lottery involved.
    pub fault_log: FaultSchedule,
}

/// Runs `agents` on the deterministic faulty-link runtime: a virtual-time
/// event executor where every delivery, fault, and activation order is a
/// pure function of `(agents, problem, config)`. Two runs with the same
/// inputs produce bit-identical metrics, fault counters, and traces —
/// the replay harness for any failure observed under injected faults.
///
/// Quiescence detection is exact by construction: the event queue *is*
/// the in-flight set. When it drains, the snapshot is checked; if the
/// system stalled short of a solution, a recovery pass retransmits parked
/// drops and asks agents to re-announce and re-evaluate
/// ([`DistributedAgent::on_nudge`]), up to `config.max_nudges` times —
/// regardless of the fault policy, since a protocol can park itself
/// without losing a message.
///
/// # Errors
///
/// [`RuntimeError::NonDenseAgentIds`] unless agent *i* reports id *i*;
/// [`RuntimeError::UnknownRecipient`] when a message addresses an agent
/// outside the population.
pub fn run_virtual<A>(
    mut agents: Vec<A>,
    problem: &DistributedCsp,
    config: &VirtualConfig,
) -> Result<VirtualReport, RuntimeError>
where
    A: DistributedAgent,
{
    for (position, agent) in agents.iter().enumerate() {
        if agent.id().index() != position {
            return Err(RuntimeError::NonDenseAgentIds {
                position,
                found: agent.id(),
            });
        }
    }
    let n = agents.len();
    let mut net: Router<A::Message> = match &config.schedule {
        Some(schedule) => Router::scripted(n, schedule, config.seed, config.record_trace),
        None => Router::new(n, config.link, config.seed, config.record_trace),
    };
    let mut recorder = StepRecorder::new();

    let mut metrics = RunMetrics::new(Termination::CutOff);
    let mut snapshot = Assignment::empty(problem.num_vars());
    let mut activations: u64 = 0;
    let mut nudges: u64 = 0;
    let mut tick: u64 = 0;
    let termination;

    // Tick 0: every agent announces its initial state. This is the first
    // maxcck wave — the same accounting as the net coordinator's start
    // wave, so the two runtimes report identical maxcck for identical
    // traffic.
    let mut start_max: u64 = 0;
    for agent in agents.iter_mut() {
        let mut out = Outbox::new(agent.id());
        agent.on_start(&mut out);
        activations += 1;
        let checks = agent.take_checks();
        metrics.total_checks += checks;
        start_max = start_max.max(checks);
        recorder.record_step(agent, 0, checks, net.sink());
        for env in out.drain() {
            net.route(0, env)?;
        }
    }
    metrics.maxcck += start_max;
    net.sink().record(TraceEvent::CycleBarrier { cycle: 0 });
    let mut insoluble = agents.iter().any(|a| a.detected_insoluble());
    for agent in agents.iter() {
        for vv in agent.assignments() {
            snapshot.set(vv.var, vv.value);
        }
    }

    loop {
        if insoluble {
            termination = Termination::Insoluble;
            break;
        }
        if config.stop_on_first_solution && problem.is_solution(&snapshot) {
            termination = Termination::Solved;
            break;
        }
        let Some(due) = net.next_due() else {
            // Quiescent: the queue is the in-flight set, so this snapshot
            // is stable unless the recovery pass injects new traffic.
            if problem.is_solution(&snapshot) {
                termination = Termination::Solved;
                break;
            }
            // Recovery is not gated on the fault policy: a protocol can
            // park itself without losing a message (AWC's repeated-nogood
            // rule silences a deadended agent), so perfect links get the
            // same bounded nudge treatment.
            if nudges >= config.max_nudges {
                termination = Termination::CutOff;
                break;
            }
            nudges += 1;
            tick += 1;
            net.flush_parked(tick);
            let mut wave_max: u64 = 0;
            for agent in agents.iter_mut() {
                let mut out = Outbox::new(agent.id());
                agent.on_nudge(&mut out);
                let checks = agent.take_checks();
                metrics.total_checks += checks;
                wave_max = wave_max.max(checks);
                recorder.record_step(agent, tick, checks, net.sink());
                for env in out.drain() {
                    net.route(tick, env)?;
                }
            }
            metrics.maxcck += wave_max;
            net.sink().record(TraceEvent::CycleBarrier { cycle: tick });
            if net.is_quiescent() {
                // Nothing to retransmit and nobody re-announced: the
                // stall is permanent.
                termination = Termination::CutOff;
                break;
            }
            continue;
        };
        if due > config.max_ticks {
            termination = Termination::CutOff;
            break;
        }
        tick = tick.max(due);

        // Deliver every message due this tick, batched per recipient in
        // ascending (recipient, enqueue_seq) order. The wave is one
        // maxcck accounting unit, closed by a cycle barrier.
        let mut wave_max: u64 = 0;
        for (recipient, inbox) in net.take_due(due, tick) {
            let Some(agent) = agents.get_mut(recipient) else {
                continue;
            };
            let mut out = Outbox::new(agent.id());
            agent.on_batch(inbox, &mut out);
            activations += 1;
            let checks = agent.take_checks();
            metrics.total_checks += checks;
            wave_max = wave_max.max(checks);
            for vv in agent.assignments() {
                snapshot.set(vv.var, vv.value);
            }
            insoluble |= agent.detected_insoluble();
            recorder.record_step(agent, tick, checks, net.sink());
            for env in out.drain() {
                net.route(tick, env)?;
            }
        }
        metrics.maxcck += wave_max;
        net.sink().record(TraceEvent::CycleBarrier { cycle: tick });
    }

    metrics.termination = termination;
    metrics.cycles = tick;
    let (ok, nogood, other) = net.class_counts();
    metrics.ok_messages = ok;
    metrics.nogood_messages = nogood;
    metrics.other_messages = other;
    let mut stats = AgentStats::default();
    for agent in agents.iter_mut() {
        // Per-step draining leaves this at zero for well-behaved agents;
        // if an agent did checks outside an activation, surface them as
        // a final step so the trace still sums to `total_checks`.
        let leftover = agent.take_checks();
        if leftover > 0 {
            metrics.total_checks += leftover;
            net.sink().record(TraceEvent::AgentStep {
                cycle: tick,
                agent: agent.id(),
                checks: leftover,
            });
        }
        stats.absorb(agent.stats());
    }
    net.link_totals().fold_into(&mut stats);
    metrics.nogoods_generated = stats.nogoods_generated;
    metrics.redundant_nogoods = stats.redundant_nogoods;
    metrics.largest_nogood = stats.largest_nogood;
    metrics.messages_sent = stats.messages_sent;
    metrics.messages_dropped = stats.messages_dropped;
    metrics.messages_duplicated = stats.messages_duplicated;
    metrics.messages_reordered = stats.messages_reordered;
    metrics.messages_retransmitted = stats.messages_retransmitted;
    metrics.max_delivery_delay = stats.max_delivery_delay;

    let in_flight = net.queued();
    net.sink().record(TraceEvent::RunEnd {
        cycle: metrics.cycles,
        runtime: RuntimeKind::Virtual,
        in_flight,
        metrics: metrics.clone(),
    });

    let solution = if termination == Termination::Solved {
        Some(snapshot)
    } else {
        None
    };
    Ok(VirtualReport {
        outcome: TrialOutcome { metrics, solution },
        ticks: tick,
        activations,
        nudges,
        fault_log: net.fault_log(),
        trace: net.take_trace(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Classify, Envelope, MessageClass};
    use discsp_core::{Domain, Nogood, Value, VarValue, VariableId};

    #[test]
    fn perfect_policy_routes_instantly_without_draws() {
        let mut link = Link::new(LinkPolicy::perfect(), 7);
        for now in [0u64, 3, 9] {
            let d = link.route(now);
            assert_eq!(d.deliveries, vec![now + 1], "one base tick per hop");
            assert!(d.faults.is_empty());
        }
        assert_eq!(link.stats.sent, 3);
        assert_eq!(link.stats.dropped, 0);
        assert_eq!(link.stats.max_delay, 0);
    }

    #[test]
    fn link_streams_are_replayable() {
        let policy = LinkPolicy::lossy(300_000)
            .with_duplication(100_000)
            .with_delay(1, 5)
            .with_reordering(3);
        let seed = derive_link_seed(42, AgentId::new(3), AgentId::new(8));
        let mut a = Link::new(policy, seed);
        let mut b = Link::new(policy, seed);
        for now in 0..200u64 {
            assert_eq!(a.route(now), b.route(now));
        }
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn distinct_links_get_distinct_streams() {
        let s1 = derive_link_seed(1, AgentId::new(0), AgentId::new(1));
        let s2 = derive_link_seed(1, AgentId::new(1), AgentId::new(0));
        let s3 = derive_link_seed(2, AgentId::new(0), AgentId::new(1));
        assert_ne!(s1, s2, "direction matters");
        assert_ne!(s1, s3, "run seed matters");
    }

    #[test]
    fn drop_rate_is_roughly_honored() {
        let mut link = Link::new(LinkPolicy::lossy(PPM / 10), 99);
        for _ in 0..10_000 {
            link.route(0);
        }
        let dropped = link.stats.dropped;
        assert!(
            (700..=1300).contains(&dropped),
            "10% of 10k ≈ 1000, got {dropped}"
        );
    }

    #[test]
    fn total_drop_parks_everything() {
        let mut link = Link::new(LinkPolicy::lossy(PPM), 5);
        for _ in 0..50 {
            assert!(link.route(0).deliveries.is_empty());
        }
        assert_eq!(link.stats.dropped, 50);
    }

    #[test]
    fn reordering_counts_overtakes() {
        let mut link = Link::new(LinkPolicy::reordering(8), 11);
        for now in 0..500u64 {
            link.route(now / 4);
        }
        assert!(link.stats.reordered > 0, "an 8-tick window must overtake");
        assert!(link.stats.max_delay <= 8);
    }

    #[test]
    fn duplication_emits_two_copies() {
        let mut link = Link::new(LinkPolicy::perfect().with_duplication(PPM), 1);
        let d = link.route(4);
        assert_eq!(d.deliveries.len(), 2);
        assert_eq!(link.stats.duplicated, 1);
        assert!(d.faults.contains(&FaultKind::Duplicated));
    }

    #[test]
    fn redelivery_counts_and_pays_delay() {
        let mut link = Link::new(LinkPolicy::delayed(2, 2), 1);
        let (due, faults) = link.redeliver(10);
        assert_eq!(due, 13, "base hop tick plus the fixed 2-tick delay");
        assert_eq!(link.stats.retransmitted, 1);
        assert_eq!(
            faults,
            vec![FaultKind::Delayed(2)],
            "the retransmission pass reports the delay it injected"
        );
    }

    // -- run_virtual ------------------------------------------------------

    /// Max-gossip agents on a ring (same protocol as the async runtime's
    /// unit tests): everyone must end up holding `true`.
    #[derive(Debug, Clone)]
    struct Gossip(Value);

    impl Classify for Gossip {
        fn class(&self) -> MessageClass {
            MessageClass::Ok
        }
    }

    struct RingAgent {
        id: AgentId,
        n: usize,
        value: Value,
    }

    impl RingAgent {
        fn next(&self) -> AgentId {
            AgentId::new(((self.id.index() + 1) % self.n) as u32)
        }
    }

    impl DistributedAgent for RingAgent {
        type Message = Gossip;

        fn id(&self) -> AgentId {
            self.id
        }

        fn on_start(&mut self, out: &mut Outbox<Gossip>) {
            out.send(self.next(), Gossip(self.value));
        }

        fn on_batch(&mut self, inbox: Vec<Envelope<Gossip>>, out: &mut Outbox<Gossip>) {
            let mut changed = false;
            for env in inbox {
                if env.payload.0 > self.value {
                    self.value = env.payload.0;
                    changed = true;
                }
            }
            if changed {
                out.send(self.next(), Gossip(self.value));
            }
        }

        fn on_nudge(&mut self, out: &mut Outbox<Gossip>) {
            out.send(self.next(), Gossip(self.value));
        }

        fn assignments(&self) -> Vec<VarValue> {
            vec![VarValue::new(VariableId::new(self.id.raw()), self.value)]
        }

        fn take_checks(&mut self) -> u64 {
            0
        }

        fn stats(&self) -> AgentStats {
            AgentStats::default()
        }
    }

    fn all_true_problem(n: usize) -> DistributedCsp {
        let mut b = DistributedCsp::builder();
        let vars: Vec<_> = (0..n).map(|_| b.variable(Domain::BOOL)).collect();
        for &v in &vars {
            b.nogood(Nogood::of([(v, Value::FALSE)])).unwrap();
        }
        b.build().unwrap()
    }

    fn ring(n: usize) -> Vec<RingAgent> {
        (0..n)
            .map(|i| RingAgent {
                id: AgentId::new(i as u32),
                n,
                value: Value::from_bool(i == 0),
            })
            .collect()
    }

    #[test]
    fn virtual_run_solves_with_perfect_links() {
        let problem = all_true_problem(5);
        let report = run_virtual(ring(5), &problem, &VirtualConfig::default()).expect("runs");
        assert_eq!(report.outcome.metrics.termination, Termination::Solved);
        // Same protocol count as the threaded runtime: 5 starts + 4 hops.
        assert_eq!(report.outcome.metrics.ok_messages, 9);
        assert_eq!(report.outcome.metrics.messages_sent, 9);
        assert_eq!(report.outcome.metrics.messages_dropped, 0);
        assert_eq!(report.nudges, 0);
    }

    #[test]
    fn virtual_run_is_bit_identical_under_faults() {
        let problem = all_true_problem(6);
        let config = VirtualConfig {
            seed: 13,
            link: LinkPolicy::lossy(200_000).with_delay(0, 4).with_reordering(2),
            ..VirtualConfig::default()
        };
        let a = run_virtual(ring(6), &problem, &config).expect("runs");
        let b = run_virtual(ring(6), &problem, &config).expect("runs");
        assert_eq!(a.outcome.metrics, b.outcome.metrics);
        assert_eq!(a.outcome.solution, b.outcome.solution);
        assert_eq!(a.ticks, b.ticks);
        assert_eq!(a.activations, b.activations);
        assert_eq!(a.nudges, b.nudges);
    }

    #[test]
    fn virtual_run_survives_total_first_drop() {
        // Every link drops everything; recovery retransmits, and the
        // second lottery is bypassed, so gossip still completes.
        let problem = all_true_problem(4);
        let config = VirtualConfig {
            seed: 3,
            link: LinkPolicy::lossy(PPM),
            ..VirtualConfig::default()
        };
        let report = run_virtual(ring(4), &problem, &config).expect("runs");
        assert_eq!(report.outcome.metrics.termination, Termination::Solved);
        assert!(report.nudges > 0, "recovery must have fired");
        let m = &report.outcome.metrics;
        assert_eq!(m.messages_dropped, m.messages_sent, "every send dropped");
        assert_eq!(
            m.total_messages(),
            m.messages_sent - m.messages_dropped
                + m.messages_duplicated
                + m.messages_retransmitted,
            "class counters count exactly the enqueued copies"
        );
    }

    #[test]
    fn virtual_run_class_counters_match_enqueues_under_faults() {
        let problem = all_true_problem(6);
        for seed in 0..10u64 {
            let config = VirtualConfig {
                seed,
                link: LinkPolicy::lossy(150_000)
                    .with_duplication(100_000)
                    .with_delay(0, 3)
                    .with_reordering(2),
                ..VirtualConfig::default()
            };
            let report = run_virtual(ring(6), &problem, &config).expect("runs");
            let m = &report.outcome.metrics;
            assert_eq!(m.termination, Termination::Solved, "seed {seed}");
            assert_eq!(
                m.total_messages(),
                m.messages_sent - m.messages_dropped
                    + m.messages_duplicated
                    + m.messages_retransmitted,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn recorded_fault_log_replays_bit_identically() {
        // The scripted-schedule contract: replaying a lottery run's
        // fault_log under the same seed reproduces everything — metrics,
        // solution, tick count, nudges, and the full event trace.
        let problem = all_true_problem(6);
        for seed in 0..8u64 {
            let config = VirtualConfig {
                seed,
                link: LinkPolicy::lossy(250_000)
                    .with_duplication(150_000)
                    .with_delay(0, 4)
                    .with_reordering(2),
                record_trace: true,
                ..VirtualConfig::default()
            };
            let original = run_virtual(ring(6), &problem, &config).expect("runs");
            assert!(
                !original.fault_log.is_empty(),
                "seed {seed}: a hostile policy must inject something"
            );
            let replay_config = VirtualConfig {
                seed,
                link: LinkPolicy::perfect(),
                schedule: Some(original.fault_log.clone()),
                record_trace: true,
                ..VirtualConfig::default()
            };
            let replay = run_virtual(ring(6), &problem, &replay_config).expect("runs");
            assert_eq!(original.outcome.metrics, replay.outcome.metrics, "seed {seed}");
            assert_eq!(original.outcome.solution, replay.outcome.solution, "seed {seed}");
            assert_eq!(original.ticks, replay.ticks, "seed {seed}");
            assert_eq!(original.activations, replay.activations, "seed {seed}");
            assert_eq!(original.nudges, replay.nudges, "seed {seed}");
            assert_eq!(original.trace, replay.trace, "seed {seed}");
            assert_eq!(
                original.fault_log, replay.fault_log,
                "seed {seed}: the replay's own log is the script it was fed"
            );
        }
    }

    #[test]
    fn scripted_link_follows_its_script() {
        let mut script = BTreeMap::new();
        script.insert(0, FaultAction::Drop);
        script.insert(1, FaultAction::Delay(4));
        script.insert(2, FaultAction::Duplicate { first: 0, second: 2 });
        let mut link = Link::scripted(script);

        let d0 = link.route(0);
        assert!(d0.deliveries.is_empty());
        assert_eq!(d0.faults, vec![FaultKind::Dropped]);

        let d1 = link.route(0);
        assert_eq!(d1.deliveries, vec![5]);
        assert_eq!(d1.faults, vec![FaultKind::Delayed(4)]);

        let d2 = link.route(0);
        assert_eq!(d2.deliveries, vec![1, 3]);
        assert!(d2.faults.contains(&FaultKind::Duplicated));
        assert!(
            d2.faults.contains(&FaultKind::Reordered),
            "the zero-delay first copy lands before the earlier Delay(4)"
        );

        // Call 3 is unscripted: perfect delivery.
        let d3 = link.route(2);
        assert_eq!(d3.deliveries, vec![3]);
        assert_eq!(link.stats.sent, 4);
        assert_eq!(link.stats.dropped, 1);
        assert_eq!(link.stats.duplicated, 1);
        assert_eq!(
            link.fault_log().len(),
            3,
            "the log mirrors exactly the scripted faults that fired"
        );
    }

    #[test]
    fn virtual_run_records_fault_trace() {
        let problem = all_true_problem(4);
        let config = VirtualConfig {
            seed: 1,
            link: LinkPolicy::lossy(500_000).with_delay(1, 3),
            record_trace: true,
            ..VirtualConfig::default()
        };
        let report = run_virtual(ring(4), &problem, &config).expect("runs");
        assert!(report
            .trace
            .iter()
            .any(|e| matches!(e, TraceEvent::Fault { .. })));
        assert!(report
            .trace
            .iter()
            .any(|e| matches!(e, TraceEvent::Delivered { .. })));
        let dropped = report
            .trace
            .iter()
            .filter(|e| matches!(
                e,
                TraceEvent::Fault {
                    kind: FaultKind::Dropped,
                    ..
                }
            ))
            .count() as u64;
        assert_eq!(dropped, report.outcome.metrics.messages_dropped);
    }

    #[test]
    fn virtual_trace_passes_the_audit() {
        let problem = all_true_problem(5);
        let config = VirtualConfig {
            seed: 2,
            link: LinkPolicy::lossy(300_000)
                .with_delay(0, 2)
                .with_duplication(50_000),
            record_trace: true,
            ..VirtualConfig::default()
        };
        let report = run_virtual(ring(5), &problem, &config).expect("runs");
        let audit = discsp_trace::audit(&report.trace).expect("trace is sealed by RunEnd");
        assert!(audit.passed(), "audit failures: {:?}", audit.failures);
        assert_eq!(audit.metrics, report.outcome.metrics);
    }

    #[test]
    fn virtual_run_rejects_unknown_recipient() {
        struct Misrouter;
        impl DistributedAgent for Misrouter {
            type Message = Gossip;
            fn id(&self) -> AgentId {
                AgentId::new(0)
            }
            fn on_start(&mut self, out: &mut Outbox<Gossip>) {
                out.send(AgentId::new(99), Gossip(Value::TRUE));
            }
            fn on_batch(&mut self, _: Vec<Envelope<Gossip>>, _: &mut Outbox<Gossip>) {}
            fn assignments(&self) -> Vec<VarValue> {
                Vec::new()
            }
            fn take_checks(&mut self) -> u64 {
                0
            }
            fn stats(&self) -> AgentStats {
                AgentStats::default()
            }
        }
        let problem = all_true_problem(1);
        let err = run_virtual(vec![Misrouter], &problem, &VirtualConfig::default());
        assert_eq!(
            err.unwrap_err(),
            RuntimeError::UnknownRecipient {
                agent: AgentId::new(99)
            }
        );
    }

    #[test]
    fn virtual_run_cuts_off_unsolvable_quiescence() {
        // All-false gossip quiesces at a non-solution. Stalls get the
        // bounded nudge treatment even over perfect links (an agent
        // protocol can park itself without message loss); the gossip
        // ring re-announces on every nudge without ever changing state,
        // so the run burns the whole budget and then reports a cutoff —
        // still far inside the tick budget.
        let problem = all_true_problem(3);
        let mut agents = ring(3);
        for a in agents.iter_mut() {
            a.value = Value::FALSE;
        }
        let config = VirtualConfig::default();
        let report = run_virtual(agents, &problem, &config).expect("runs");
        assert_eq!(report.outcome.metrics.termination, Termination::CutOff);
        assert!(report.outcome.solution.is_none());
        assert_eq!(report.nudges, config.max_nudges);
        assert!(report.ticks < config.max_ticks);
    }

    #[test]
    fn policy_constructors_compose() {
        let p = LinkPolicy::perfect()
            .with_drop(10)
            .with_duplication(20)
            .with_delay(1, 2)
            .with_reordering(3);
        assert!(!p.is_perfect());
        assert_eq!(p.drop_ppm, 10);
        assert_eq!(p.dup_ppm, 20);
        assert_eq!((p.delay_min, p.delay_max), (1, 2));
        assert_eq!(p.reorder_window, 3);
        assert!(LinkPolicy::default().is_perfect());
    }
}
