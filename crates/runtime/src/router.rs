//! The deterministic message router shared by the virtual executor and
//! the TCP coordinator.
//!
//! [`Router`] owns the event queue, the n×n [`Link`] matrix, the parked
//! (dropped-message) recovery buffers, and the per-class message
//! counters that used to live inside `run_virtual`. Extracting it lets
//! `discsp-net` relay frames between OS processes through *exactly* the
//! same fault lottery and delivery ordering as the in-process virtual
//! runtime: as long as callers issue `route`/`flush_parked`/`take_due`
//! in the same order, the per-link [`SplitMix64`](crate::SplitMix64)
//! streams are consumed identically and every fault counter replays
//! bit-for-bit from `(seed, policy)` — whether the agents live in this
//! process or behind a socket.
//!
//! The router also owns the link-layer half of the trace: it records
//! `Sent` at the moment a message enters its link (mirroring the
//! `sent` counter), `Fault` for every lottery outcome — including the
//! delay/reorder faults injected on the *retransmission* path — and
//! `Delivered` when a copy leaves the queue. Executors interleave their
//! agent-step events into the same [`RingBuffer`] via [`Router::sink`],
//! so one buffer holds the whole run in emission order.

use std::collections::BTreeMap;

use discsp_core::AgentId;
use discsp_trace::{FaultKind, RingBuffer, TraceEvent, TraceSink};

use crate::error::RuntimeError;
use crate::link::{derive_link_seed, Link, LinkPolicy, LinkStats};
use crate::message::{Classify, Envelope, MessageClass};
use crate::schedule::{FaultEvent, FaultSchedule};
use crate::seed::SplitMix64;

/// Derives the directed link's same-tick delivery rank. Independent of
/// the link's fault stream (different mixing constants), constant per
/// link, and a pure function of `(run_seed, from, to)`.
fn derive_order_rank(run_seed: u64, index: u64) -> u64 {
    SplitMix64::new(
        run_seed
            ^ 0x6A09_E667_F3BC_C909u64.wrapping_mul(index.wrapping_add(1)),
    )
    .next_u64()
}

/// How a router materializes the link for an ordered agent pair the
/// first time traffic touches it.
#[derive(Debug)]
enum LinkMode {
    /// Every link follows one policy; its stream seed is a pure function
    /// of `(run_seed, from, to)`.
    Lottery(LinkPolicy),
    /// Links replay an explicit schedule; unscripted calls deliver
    /// perfectly.
    Scripted(FaultSchedule),
}

/// Deterministic routing/enqueue state: event queue, lazily materialized
/// link table, parked drops, and message-class counters.
///
/// Delivery order is total and deterministic: the queue is keyed by
/// `(due_tick, link_rank, enqueue_seq)`, where `link_rank` is a
/// seed-derived constant per directed link. Messages due the same tick
/// therefore drain in an order that is a pure function of the run seed —
/// identical across reruns and independent of the order in which links
/// happened to enqueue them — while two same-tick messages on the *same*
/// link keep their send order (per-link FIFO; the explicit reordering
/// window is the only way a link reorders its own traffic).
///
/// Links are created on first use rather than as an n×n matrix: a link's
/// fault stream ([`derive_link_seed`]) and its same-tick rank
/// (`derive_order_rank`) are pure functions of `(run_seed, from, to)`, so
/// lazy creation is replay-transparent while keeping memory proportional
/// to the links actually exercised — for a degree-bounded constraint
/// graph that is O(agents), not O(agents²).
#[derive(Debug)]
pub struct Router<M> {
    /// Event queue keyed by `(due_tick, link_rank, enqueue_seq)` — a
    /// total, deterministic, seed-derived delivery order.
    queue: BTreeMap<(u64, u64, u64), Envelope<M>>,
    /// Links touched so far, keyed by `from * n + to`.
    links: BTreeMap<usize, Link>,
    mode: LinkMode,
    /// Dropped messages parked per sending agent, in drop order.
    parked: BTreeMap<usize, Vec<Envelope<M>>>,
    n: usize,
    run_seed: u64,
    seq: u64,
    ok_messages: u64,
    nogood_messages: u64,
    other_messages: u64,
    sink: RingBuffer,
}

impl<M: Classify + Clone> Router<M> {
    /// Creates the router for `n` agents, every directed link following
    /// `policy` with its stream derived from `run_seed` via
    /// [`derive_link_seed`].
    pub fn new(n: usize, policy: LinkPolicy, run_seed: u64, record_trace: bool) -> Self {
        Router::build(n, run_seed, record_trace, LinkMode::Lottery(policy))
    }

    /// Creates a router whose links replay `schedule` exactly: the k-th
    /// call on link `from → to` suffers the scripted action, every other
    /// message delivers perfectly, and no fault lottery exists. The
    /// `run_seed` still fixes the same-tick delivery order, so a
    /// recorded fault log replays its originating run under the seed
    /// that produced it.
    pub fn scripted(
        n: usize,
        schedule: &FaultSchedule,
        run_seed: u64,
        record_trace: bool,
    ) -> Self {
        Router::build(n, run_seed, record_trace, LinkMode::Scripted(schedule.clone()))
    }

    fn build(n: usize, run_seed: u64, record_trace: bool, mode: LinkMode) -> Self {
        Router {
            queue: BTreeMap::new(),
            links: BTreeMap::new(),
            mode,
            parked: BTreeMap::new(),
            n,
            run_seed,
            seq: 0,
            ok_messages: 0,
            nogood_messages: 0,
            other_messages: 0,
            sink: if record_trace {
                RingBuffer::new()
            } else {
                RingBuffer::disabled()
            },
        }
    }

    fn link_index(&self, from: AgentId, to: AgentId) -> usize {
        from.index() * self.n + to.index()
    }

    /// The link at `index`, materialized on first touch. Creation order
    /// cannot perturb replay: the link's stream seed is a pure function
    /// of `(run_seed, from, to)`, not of when the link first saw traffic.
    fn link_mut(&mut self, index: usize) -> &mut Link {
        let n = self.n;
        let run_seed = self.run_seed;
        let mode = &self.mode;
        self.links.entry(index).or_insert_with(|| {
            let from = AgentId::new((index / n) as u32);
            let to = AgentId::new((index % n) as u32);
            match mode {
                LinkMode::Lottery(policy) => {
                    Link::new(*policy, derive_link_seed(run_seed, from, to))
                }
                LinkMode::Scripted(schedule) => Link::scripted(schedule.actions_for(from, to)),
            }
        })
    }

    fn enqueue(&mut self, due: u64, link: usize, env: Envelope<M>) {
        match env.payload.class() {
            MessageClass::Ok => self.ok_messages += 1,
            MessageClass::Nogood => self.nogood_messages += 1,
            MessageClass::Other => self.other_messages += 1,
        }
        let rank = derive_order_rank(self.run_seed, link as u64);
        self.queue.insert((due, rank, self.seq), env);
        self.seq += 1;
    }

    /// Routes one freshly sent envelope through its link at time `now`,
    /// recording a `Sent` trace event exactly where the link's `sent`
    /// counter increments (unknown recipients error out before either).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::UnknownRecipient`] when the envelope addresses an
    /// agent outside the population.
    pub fn route(&mut self, now: u64, env: Envelope<M>) -> Result<(), RuntimeError> {
        if env.to.index() >= self.n || env.from.index() >= self.n {
            return Err(RuntimeError::UnknownRecipient { agent: env.to });
        }
        let index = self.link_index(env.from, env.to);
        let decision = self.link_mut(index).route(now);
        if self.sink.enabled() {
            self.sink.record(TraceEvent::Sent {
                cycle: now,
                from: env.from,
                to: env.to,
                class: env.payload.class(),
            });
            for &kind in &decision.faults {
                self.sink.record(TraceEvent::Fault {
                    cycle: now,
                    from: env.from,
                    to: env.to,
                    class: env.payload.class(),
                    kind,
                });
            }
        }
        if decision.deliveries.is_empty() {
            self.parked.entry(env.from.index()).or_default().push(env);
            return Ok(());
        }
        let mut copies = decision.deliveries.into_iter().peekable();
        while let Some(due) = copies.next() {
            if copies.peek().is_some() {
                self.enqueue(due, index, env.clone());
            } else {
                self.enqueue(due, index, env);
                break;
            }
        }
        Ok(())
    }

    /// Re-enqueues every parked (dropped) message, in sender order.
    /// Returns how many were flushed. The retransmission and any
    /// delay/reorder faults the link injects on the second pass are all
    /// recorded — the audit counts every fault event against the link
    /// counters, so none may be dropped on the recovery path.
    pub fn flush_parked(&mut self, now: u64) -> usize {
        let mut flushed = 0;
        // BTreeMap key order = ascending sender id, the same order the
        // dense per-sender buckets used to flush in.
        for (_, bucket) in std::mem::take(&mut self.parked) {
            for env in bucket {
                let index = self.link_index(env.from, env.to);
                let (due, faults) = self.link_mut(index).redeliver(now);
                if self.sink.enabled() {
                    self.sink.record(TraceEvent::Fault {
                        cycle: now,
                        from: env.from,
                        to: env.to,
                        class: env.payload.class(),
                        kind: FaultKind::Retransmitted,
                    });
                    for kind in faults {
                        self.sink.record(TraceEvent::Fault {
                            cycle: now,
                            from: env.from,
                            to: env.to,
                            class: env.payload.class(),
                            kind,
                        });
                    }
                }
                self.enqueue(due, index, env);
                flushed += 1;
            }
        }
        flushed
    }

    /// The due tick of the earliest queued message, if any.
    pub fn next_due(&self) -> Option<u64> {
        self.queue.keys().next().map(|&(due, _, _)| due)
    }

    /// Whether the in-flight set (queue) is empty. The queue *is* the
    /// in-flight set, so an empty queue means the captured assignment
    /// snapshot is a consistent global state.
    pub fn is_quiescent(&self) -> bool {
        self.queue.is_empty()
    }

    /// Removes every message due exactly at `due`, batched per recipient
    /// in the queue's seed-derived `(link_rank, enqueue_seq)` order,
    /// recording `Delivered` trace events at cycle `tick`.
    pub fn take_due(&mut self, due: u64, tick: u64) -> BTreeMap<usize, Vec<Envelope<M>>> {
        let mut inboxes: BTreeMap<usize, Vec<Envelope<M>>> = BTreeMap::new();
        let due_keys: Vec<(u64, u64, u64)> = self
            .queue
            .range((due, 0, 0)..=(due, u64::MAX, u64::MAX))
            .map(|(&k, _)| k)
            .collect();
        for key in due_keys {
            if let Some(env) = self.queue.remove(&key) {
                if self.sink.enabled() {
                    self.sink.record(TraceEvent::Delivered {
                        cycle: tick,
                        from: env.from,
                        to: env.to,
                        class: env.payload.class(),
                    });
                }
                inboxes.entry(env.to.index()).or_default().push(env);
            }
        }
        inboxes
    }

    /// Per-class counts of enqueued message copies:
    /// `(ok, nogood, other)`.
    pub fn class_counts(&self) -> (u64, u64, u64) {
        (self.ok_messages, self.nogood_messages, self.other_messages)
    }

    /// Number of message copies still queued (in flight). Parked drops
    /// are *not* in flight — they were already counted as dropped.
    pub fn queued(&self) -> u64 {
        self.queue.len() as u64
    }

    /// Fault counters summed over every link touched so far (untouched
    /// links have all-zero counters by definition).
    pub fn link_totals(&self) -> LinkStats {
        let mut totals = LinkStats::default();
        for link in self.links.values() {
            totals.absorb(link.stats);
        }
        totals
    }

    /// Every fault any link actually injected, assembled into a
    /// replayable [`FaultSchedule`]. Feeding it to [`Router::scripted`]
    /// under the same run seed replays this router's behavior exactly.
    pub fn fault_log(&self) -> FaultSchedule {
        let mut events = Vec::new();
        for (&index, link) in self.links.iter() {
            let from = AgentId::new((index / self.n) as u32);
            let to = AgentId::new((index % self.n) as u32);
            for &(call, action) in link.fault_log() {
                events.push(FaultEvent {
                    from,
                    to,
                    call,
                    action,
                });
            }
        }
        FaultSchedule::new(events)
    }

    /// The trace sink. Executors record their agent-step events here so
    /// the whole run lands in one buffer in emission order.
    pub fn sink(&mut self) -> &mut RingBuffer {
        &mut self.sink
    }

    /// Takes the recorded trace (empty unless trace recording is on).
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.sink.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use discsp_core::Value;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Note(Value);

    impl Classify for Note {
        fn class(&self) -> MessageClass {
            MessageClass::Ok
        }
    }

    fn env(from: u32, to: u32) -> Envelope<Note> {
        Envelope {
            from: AgentId::new(from),
            to: AgentId::new(to),
            payload: Note(Value::new(0)),
        }
    }

    #[test]
    fn perfect_router_delivers_next_tick_in_order() {
        let mut router: Router<Note> = Router::new(3, LinkPolicy::perfect(), 0, false);
        router.route(0, env(0, 1)).expect("routes");
        router.route(0, env(1, 2)).expect("routes");
        assert_eq!(router.next_due(), Some(1));
        assert!(!router.is_quiescent());
        assert_eq!(router.queued(), 2);
        let inboxes = router.take_due(1, 1);
        assert_eq!(inboxes.len(), 2);
        assert!(router.is_quiescent());
        assert_eq!(router.queued(), 0);
        assert_eq!(router.class_counts(), (2, 0, 0));
        assert_eq!(router.link_totals().sent, 2);
    }

    #[test]
    fn dropped_messages_park_and_flush() {
        let mut router: Router<Note> = Router::new(2, LinkPolicy::lossy(crate::PPM), 7, false);
        router.route(0, env(0, 1)).expect("routes");
        assert!(router.is_quiescent(), "drop leaves the queue empty");
        assert_eq!(router.flush_parked(1), 1);
        assert!(!router.is_quiescent());
        let totals = router.link_totals();
        assert_eq!(totals.dropped, 1);
        assert_eq!(totals.retransmitted, 1);
    }

    #[test]
    fn unknown_recipient_is_an_error() {
        let mut router: Router<Note> = Router::new(2, LinkPolicy::perfect(), 0, false);
        let err = router.route(0, env(0, 9)).unwrap_err();
        assert_eq!(
            err,
            RuntimeError::UnknownRecipient {
                agent: AgentId::new(9)
            }
        );
    }

    #[test]
    fn two_routers_fed_identically_agree() {
        let policy = LinkPolicy::lossy(300_000).with_delay(0, 3).with_duplication(100_000);
        let mut a: Router<Note> = Router::new(3, policy, 42, false);
        let mut b: Router<Note> = Router::new(3, policy, 42, false);
        for now in 0..50 {
            for (from, to) in [(0, 1), (1, 2), (2, 0)] {
                a.route(now, env(from, to)).expect("routes");
                b.route(now, env(from, to)).expect("routes");
            }
        }
        assert_eq!(a.class_counts(), b.class_counts());
        assert_eq!(a.link_totals(), b.link_totals());
    }

    #[test]
    fn same_tick_order_is_seed_derived_and_insertion_independent() {
        // Property (satellite of the explorer work): messages due the
        // same tick drain in an order that is a pure function of the run
        // seed — identical across reruns, independent of the order the
        // links enqueued them — while same-link messages keep FIFO.
        use crate::seed::SplitMix64;

        let n = 4;
        // Every ordered pair sends once at now = 0; all due tick 1.
        let sends: Vec<(u32, u32)> = (0..n as u32)
            .flat_map(|f| (0..n as u32).filter(move |&t| t != f).map(move |t| (f, t)))
            .collect();

        let drain = |order: &[usize], seed: u64| -> Vec<(AgentId, AgentId)> {
            let mut router: Router<Note> = Router::new(n, LinkPolicy::perfect(), seed, true);
            for &i in order {
                let (f, t) = sends[i];
                router.route(0, env(f, t)).expect("routes");
            }
            router.take_due(1, 1);
            router
                .take_trace()
                .into_iter()
                .filter_map(|e| match e {
                    TraceEvent::Delivered { from, to, .. } => Some((from, to)),
                    _ => None,
                })
                .collect()
        };

        let forward: Vec<usize> = (0..sends.len()).collect();
        let mut shuffled = forward.clone();
        let mut rng = SplitMix64::new(99);
        for i in (1..shuffled.len()).rev() {
            shuffled.swap(i, rng.next_below(i as u64 + 1) as usize);
        }
        assert_ne!(forward, shuffled, "the shuffle must actually permute");

        let mut distinct_orders = Vec::new();
        for seed in 0..8u64 {
            let a = drain(&forward, seed);
            let b = drain(&shuffled, seed);
            let c = drain(&forward, seed);
            assert_eq!(a, c, "seed {seed}: rerun-identical");
            assert_eq!(a, b, "seed {seed}: insertion-order-independent");
            if !distinct_orders.contains(&a) {
                distinct_orders.push(a);
            }
        }
        assert!(
            distinct_orders.len() > 1,
            "the order must genuinely depend on the seed"
        );

        // Same-link FIFO: two messages on one link due the same tick
        // keep their send order under every seed.
        for seed in 0..8u64 {
            let mut router: Router<Note> = Router::new(2, LinkPolicy::perfect(), seed, false);
            router
                .route(0, Envelope { from: AgentId::new(0), to: AgentId::new(1), payload: Note(Value::new(1)) })
                .expect("routes");
            router
                .route(0, Envelope { from: AgentId::new(0), to: AgentId::new(1), payload: Note(Value::new(2)) })
                .expect("routes");
            let inboxes = router.take_due(1, 1);
            let inbox = inboxes.get(&1).expect("recipient 1 has mail");
            let values: Vec<_> = inbox.iter().map(|e| e.payload.0).collect();
            assert_eq!(values, vec![Value::new(1), Value::new(2)], "seed {seed}");
        }
    }

    #[test]
    fn scripted_router_replays_a_recorded_log() {
        let policy = LinkPolicy::lossy(400_000)
            .with_duplication(200_000)
            .with_delay(0, 3);
        let mut original: Router<Note> = Router::new(3, policy, 11, false);
        for now in 0..30 {
            for (from, to) in [(0, 1), (1, 2), (2, 0)] {
                original.route(now, env(from, to)).expect("routes");
            }
            if now % 10 == 9 {
                original.flush_parked(now);
            }
        }
        let log = original.fault_log();
        assert!(!log.is_empty());

        let mut replay: Router<Note> = Router::scripted(3, &log, 11, false);
        for now in 0..30 {
            for (from, to) in [(0, 1), (1, 2), (2, 0)] {
                replay.route(now, env(from, to)).expect("routes");
            }
            if now % 10 == 9 {
                replay.flush_parked(now);
            }
        }
        assert_eq!(original.link_totals(), replay.link_totals());
        assert_eq!(original.class_counts(), replay.class_counts());
        assert_eq!(original.queued(), replay.queued());
        assert_eq!(original.fault_log(), replay.fault_log());
    }

    #[test]
    fn trace_accounts_for_every_send_and_recovery_fault() {
        // Links that always drop and then pay a delay on retransmission:
        // the recovery path's Delayed faults must appear in the trace,
        // not just in the counters.
        let policy = LinkPolicy::lossy(crate::PPM).with_delay(2, 2);
        let mut router: Router<Note> = Router::new(2, policy, 3, true);
        router.route(0, env(0, 1)).expect("routes");
        router.route(0, env(1, 0)).expect("routes");
        assert_eq!(router.flush_parked(1), 2);
        let trace = router.take_trace();
        let count = |pred: &dyn Fn(&TraceEvent) -> bool| trace.iter().filter(|e| pred(e)).count();
        assert_eq!(count(&|e| matches!(e, TraceEvent::Sent { .. })), 2);
        assert_eq!(
            count(&|e| matches!(
                e,
                TraceEvent::Fault {
                    kind: FaultKind::Dropped,
                    ..
                }
            )),
            2
        );
        assert_eq!(
            count(&|e| matches!(
                e,
                TraceEvent::Fault {
                    kind: FaultKind::Retransmitted,
                    ..
                }
            )),
            2
        );
        assert_eq!(
            count(&|e| matches!(
                e,
                TraceEvent::Fault {
                    kind: FaultKind::Delayed(2),
                    ..
                }
            )),
            2,
            "retransmission-path delays are recorded"
        );
    }
}
