//! Distributed-system substrates for DisCSP algorithms.
//!
//! Two runtimes execute the same [`DistributedAgent`] implementations:
//!
//! * [`SyncSimulator`] — the synchronous cycle simulator the paper uses
//!   for all measurements (§4): per cycle, every agent reads its inbox,
//!   computes, and sends; `cycle` and `maxcck` metrics are collected here.
//! * [`run_async`] — one OS thread per agent with crossbeam channels,
//!   demonstrating the algorithms on a *fully asynchronous* system, with
//!   quiescence-based solution detection via in-flight message counting.
//!
//! Plus deterministic seed derivation ([`SplitMix64`], [`derive_seed`])
//! shared by the experiment harnesses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod agent;
mod asynchronous;
mod error;
mod message;
mod seed;
mod sync;
mod trace;

pub use agent::{AgentStats, DistributedAgent, Outbox};
pub use asynchronous::{run_async, AsyncConfig, AsyncReport};
pub use error::RuntimeError;
pub use message::{Classify, Envelope, MessageClass};
pub use seed::{derive_seed, SplitMix64};
pub use sync::{CycleRecord, SyncRun, SyncSimulator};
pub use trace::{render_trace, TraceEvent};
