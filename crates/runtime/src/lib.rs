//! Distributed-system substrates for DisCSP algorithms.
//!
//! Two runtimes execute the same [`DistributedAgent`] implementations:
//!
//! * [`SyncSimulator`] — the synchronous cycle simulator the paper uses
//!   for all measurements (§4): per cycle, every agent reads its inbox,
//!   computes, and sends; `cycle` and `maxcck` metrics are collected here.
//! * [`run_async`] — one OS thread per agent with crossbeam channels,
//!   demonstrating the algorithms on a *fully asynchronous* system, with
//!   quiescence-based solution detection via in-flight message counting.
//! * [`run_virtual`] — a single-threaded discrete-event executor over the
//!   same agents and the same [`Link`] fault layer, fully deterministic:
//!   a failing `(seed, LinkPolicy)` pair replays bit-identically.
//! * [`run_sharded`] — the M:N sharded executor: `run_virtual`'s
//!   deterministic semantics with agent activations fanned out to a
//!   fixed pool of worker threads owning slab-pooled per-shard arenas.
//!   Bit-identical to `run_virtual` for any worker count.
//!
//! The [`link`](crate::Link) layer injects seeded drop, duplication,
//! delay, and reordering faults into either runtime's traffic, with
//! per-link [`SplitMix64`] streams derived from the run seed
//! ([`derive_link_seed`]).
//!
//! Plus deterministic seed derivation ([`SplitMix64`], [`derive_seed`])
//! shared by the experiment harnesses.
//!
//! Every runtime records through the [`TraceSink`] pipeline from
//! `discsp-trace` (re-exported here): the same event schema is emitted
//! by all executors, so traces are schema-comparable across runtimes
//! and auditable with `discsp-trace audit`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod agent;
mod asynchronous;
mod error;
mod link;
mod message;
mod pool;
mod recorder;
mod router;
mod shard;
mod schedule;
mod seed;
mod sync;
mod wire;

pub use agent::{AgentNote, AgentStats, DistributedAgent, Outbox};
pub use asynchronous::{run_async, AsyncConfig, AsyncReport};
pub use discsp_trace::{
    canonical_sort, render_trace, FaultKind, NullSink, RingBuffer, RuntimeKind, TraceEvent,
    TraceSink,
};
pub use error::RuntimeError;
pub use link::{
    derive_link_seed, run_virtual, Link, LinkPolicy, LinkStats, RouteDecision, VirtualConfig,
    VirtualReport, PPM,
};
pub use message::{Classify, Envelope, MessageClass};
pub use pool::{ShardPlan, Slab};
pub use recorder::StepRecorder;
pub use router::Router;
pub use shard::{run_sharded, ShardConfig};
pub use schedule::{FaultAction, FaultEvent, FaultSchedule, ScheduleParseError};
pub use seed::{derive_seed, SplitMix64};
pub use sync::{CycleRecord, SyncRun, SyncSimulator};
