//! Runtime failure reporting.
//!
//! Both runtimes report structural failures — misrouted messages, dead
//! agent threads — as values instead of panicking, so a single broken
//! agent degrades into a reported error rather than tearing down the
//! whole process (or, worse, deadlocking the remaining threads).

use std::error::Error;
use std::fmt;

use discsp_core::AgentId;

/// Errors raised by the synchronous simulator and the asynchronous
/// runtime while executing an agent population.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// Agent *i* of the population did not report id *i*. Both runtimes
    /// route messages by dense agent index, so a sparse or permuted
    /// population cannot be executed.
    NonDenseAgentIds {
        /// Position in the supplied population.
        position: usize,
        /// The id that agent actually reported.
        found: AgentId,
    },
    /// A message was addressed to an agent outside the population.
    UnknownRecipient {
        /// The nonexistent addressee.
        agent: AgentId,
    },
    /// An agent thread panicked mid-run (asynchronous runtime only); its
    /// channel is poisoned and its metrics are lost.
    AgentPanicked {
        /// The agent whose thread died.
        agent: AgentId,
    },
    /// A shard worker thread died mid-run (sharded runtime only): an
    /// agent panicked while its shard drained a wave. The panic also
    /// resurfaces when the worker scope unwinds.
    ShardWorkerDied {
        /// Index of the shard whose worker died.
        shard: usize,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::NonDenseAgentIds { position, found } => write!(
                f,
                "agent at position {position} reports id {found}; agents must be supplied in \
                 dense id order"
            ),
            RuntimeError::UnknownRecipient { agent } => {
                write!(f, "message addressed to unknown agent {agent}")
            }
            RuntimeError::AgentPanicked { agent } => {
                write!(f, "thread of agent {agent} panicked; its results are lost")
            }
            RuntimeError::ShardWorkerDied { shard } => {
                write!(f, "worker of shard {shard} died mid-run; its results are lost")
            }
        }
    }
}

impl Error for RuntimeError {}
