//! Integration tests driving both runtimes with a purpose-built
//! protocol: distributed maximum agreement over a line graph.

use discsp_core::{
    AgentId, DistributedCsp, Domain, Nogood, Value, VarValue, VariableId,
};
use discsp_runtime::{
    run_async, run_virtual, AgentStats, AsyncConfig, Classify, DistributedAgent, Envelope,
    LinkPolicy, MessageClass, Outbox, RuntimeError, SyncSimulator, VirtualConfig, PPM,
};

/// Protocol: every agent must end up holding the maximum of all initial
/// values. Agents announce their current value to both line neighbors
/// whenever it increases.
#[derive(Debug, Clone)]
struct Announce(Value);

impl Classify for Announce {
    fn class(&self) -> MessageClass {
        MessageClass::Ok
    }
}

struct MaxAgent {
    id: AgentId,
    n: usize,
    value: Value,
    checks: u64,
}

impl MaxAgent {
    fn neighbors(&self) -> Vec<AgentId> {
        let i = self.id.index();
        let mut out = Vec::new();
        if i > 0 {
            out.push(AgentId::new((i - 1) as u32));
        }
        if i + 1 < self.n {
            out.push(AgentId::new((i + 1) as u32));
        }
        out
    }

    fn broadcast(&self, out: &mut Outbox<Announce>) {
        for peer in self.neighbors() {
            out.send(peer, Announce(self.value));
        }
    }
}

impl DistributedAgent for MaxAgent {
    type Message = Announce;

    fn id(&self) -> AgentId {
        self.id
    }

    fn on_start(&mut self, out: &mut Outbox<Announce>) {
        self.broadcast(out);
    }

    fn on_batch(&mut self, inbox: Vec<Envelope<Announce>>, out: &mut Outbox<Announce>) {
        let mut grew = false;
        for env in inbox {
            self.checks += 1;
            if env.payload.0 > self.value {
                self.value = env.payload.0;
                grew = true;
            }
        }
        if grew {
            self.broadcast(out);
        }
    }

    fn assignments(&self) -> Vec<VarValue> {
        vec![VarValue::new(VariableId::new(self.id.raw()), self.value)]
    }

    fn take_checks(&mut self) -> u64 {
        std::mem::take(&mut self.checks)
    }

    fn stats(&self) -> AgentStats {
        AgentStats::default()
    }
}

/// The "everyone holds value `max`" problem as unary nogoods.
fn all_hold(n: usize, max: u16, domain: u16) -> DistributedCsp {
    let mut b = DistributedCsp::builder();
    for _ in 0..n {
        b.variable(Domain::new(domain));
    }
    for i in 0..n {
        for wrong in 0..domain {
            if wrong != max {
                b.nogood(Nogood::of([(VariableId::new(i as u32), Value::new(wrong))]))
                    .unwrap();
            }
        }
    }
    b.build().unwrap()
}

fn agents(n: usize, seed_of_max: usize, max: u16) -> Vec<MaxAgent> {
    (0..n)
        .map(|i| MaxAgent {
            id: AgentId::new(i as u32),
            n,
            value: Value::new(if i == seed_of_max { max } else { 0 }),
            checks: 0,
        })
        .collect()
}

#[test]
fn sync_propagation_takes_distance_cycles() {
    // Max starts at one end of a 6-agent line: it needs 5 hops, one per
    // cycle, plus the start cycle.
    let problem = all_hold(6, 9, 10);
    let mut sim = SyncSimulator::new(agents(6, 0, 9));
    let run = sim.run(&problem).expect("runs");
    assert!(run.outcome.metrics.termination.is_solved());
    assert_eq!(run.outcome.metrics.cycles, 6);
}

#[test]
fn sync_delay_stretches_propagation_deterministically() {
    let problem = all_hold(6, 9, 10);
    let mut sim = SyncSimulator::new(agents(6, 0, 9));
    sim.message_delay(3, 42);
    let a = sim.run(&problem).expect("runs").outcome.metrics.cycles;
    let mut sim = SyncSimulator::new(agents(6, 0, 9));
    sim.message_delay(3, 42);
    let b = sim.run(&problem).expect("runs").outcome.metrics.cycles;
    assert_eq!(a, b);
    assert!(a >= 6, "delay can only stretch the 5-hop propagation");
    assert!(a <= 6 + 5 * 3, "each hop delays at most 3 extra cycles");
}

#[test]
fn sync_history_shows_monotone_violation_decline() {
    let problem = all_hold(5, 4, 5);
    let mut sim = SyncSimulator::new(agents(5, 2, 4));
    sim.record_history(true);
    let run = sim.run(&problem).expect("runs");
    let violations: Vec<u64> = run.history.iter().map(|r| r.violations).collect();
    // Max spreads outward from the middle: violations never increase.
    for w in violations.windows(2) {
        assert!(w[1] <= w[0], "violations {violations:?} increased");
    }
    assert_eq!(*violations.last().unwrap(), 0);
}

#[test]
fn async_reaches_same_fixed_point() {
    let problem = all_hold(8, 7, 8);
    let report = run_async(agents(8, 3, 7), &problem, &AsyncConfig::default()).expect("runs");
    assert!(report.outcome.metrics.termination.is_solved());
    let solution = report.outcome.solution.unwrap();
    for i in 0..8 {
        assert_eq!(solution.get(VariableId::new(i)), Some(Value::new(7)));
    }
}

#[test]
fn async_jitter_does_not_change_the_fixed_point() {
    let problem = all_hold(5, 3, 4);
    for seed in 0..3 {
        let config = AsyncConfig {
            jitter_micros: 400,
            seed,
            ..AsyncConfig::default()
        };
        let report = run_async(agents(5, 4, 3), &problem, &config).expect("runs");
        assert!(
            report.outcome.metrics.termination.is_solved(),
            "seed {seed}"
        );
    }
}

#[test]
fn message_metering_matches_protocol() {
    // 6-agent line, max at index 0: start sends 1+2+2+2+2+1 = 10, then
    // the growing wave re-broadcasts from agents 1..=5 (2+2+2+2+1 = 9).
    let problem = all_hold(6, 9, 10);
    let mut sim = SyncSimulator::new(agents(6, 0, 9));
    let run = sim.run(&problem).expect("runs");
    assert_eq!(run.outcome.metrics.ok_messages, 19);
    assert_eq!(run.outcome.metrics.nogood_messages, 0);
}

#[test]
fn observer_uses_final_assignment_snapshot() {
    let problem = all_hold(3, 2, 3);
    let mut sim = SyncSimulator::new(agents(3, 1, 2));
    let run = sim.run(&problem).expect("runs");
    let solution = run.outcome.solution.unwrap();
    assert!(problem.is_solution(&solution));
    assert_eq!(solution.num_vars(), 3);
}

/// A MaxAgent that misroutes its very first announcement to an agent
/// outside the population.
struct Misrouter(MaxAgent);

impl DistributedAgent for Misrouter {
    type Message = Announce;

    fn id(&self) -> AgentId {
        self.0.id()
    }

    fn on_start(&mut self, out: &mut Outbox<Announce>) {
        out.send(AgentId::new(999), Announce(self.0.value));
        self.0.on_start(out);
    }

    fn on_batch(&mut self, inbox: Vec<Envelope<Announce>>, out: &mut Outbox<Announce>) {
        self.0.on_batch(inbox, out);
    }

    fn assignments(&self) -> Vec<VarValue> {
        self.0.assignments()
    }

    fn take_checks(&mut self) -> u64 {
        self.0.take_checks()
    }

    fn stats(&self) -> AgentStats {
        self.0.stats()
    }
}

/// An agent that panics as soon as its first message arrives.
struct Bomb(MaxAgent);

impl DistributedAgent for Bomb {
    type Message = Announce;

    fn id(&self) -> AgentId {
        self.0.id()
    }

    fn on_start(&mut self, out: &mut Outbox<Announce>) {
        self.0.on_start(out);
    }

    fn on_batch(&mut self, _inbox: Vec<Envelope<Announce>>, _out: &mut Outbox<Announce>) {
        panic!("agent dies mid-run");
    }

    fn assignments(&self) -> Vec<VarValue> {
        self.0.assignments()
    }

    fn take_checks(&mut self) -> u64 {
        self.0.take_checks()
    }

    fn stats(&self) -> AgentStats {
        self.0.stats()
    }
}

#[test]
fn async_run_reports_unknown_recipient() {
    let problem = all_hold(3, 2, 3);
    let population: Vec<Misrouter> = agents(3, 1, 2).into_iter().map(Misrouter).collect();
    let result = run_async(population, &problem, &AsyncConfig::default());
    match result {
        Err(RuntimeError::UnknownRecipient { agent }) => {
            assert_eq!(agent, AgentId::new(999));
        }
        other => panic!("expected UnknownRecipient, got {other:?}"),
    }
}

#[test]
fn async_run_reports_panicked_agent() {
    let problem = all_hold(3, 2, 3);
    let mut population: Vec<Bomb> = agents(3, 1, 2).into_iter().map(Bomb).collect();
    // Keep one sane sender so the bomb actually receives a message.
    population[0].0.value = Value::new(2);
    let result = run_async(population, &problem, &AsyncConfig::default());
    match result {
        Err(RuntimeError::AgentPanicked { .. }) => {}
        other => panic!("expected AgentPanicked, got {other:?}"),
    }
}

#[test]
fn async_class_counters_equal_enqueued_copies_under_duplication() {
    // Every message is duplicated: the ok? counter must equal the
    // enqueued copies (sent + duplicated), not the emission count —
    // the historical bug counted classes before routing.
    let problem = all_hold(4, 3, 4);
    let config = AsyncConfig {
        link: LinkPolicy::perfect().with_duplication(PPM),
        seed: 11,
        ..AsyncConfig::default()
    };
    let report = run_async(agents(4, 0, 3), &problem, &config).expect("runs");
    let m = &report.outcome.metrics;
    assert!(m.termination.is_solved());
    assert_eq!(m.messages_duplicated, m.messages_sent);
    assert_eq!(
        m.total_messages(),
        m.messages_sent + m.messages_duplicated,
        "classes must be counted per successfully enqueued copy"
    );
}

#[test]
fn virtual_run_reports_unknown_recipient() {
    let problem = all_hold(3, 2, 3);
    let population: Vec<Misrouter> = agents(3, 1, 2).into_iter().map(Misrouter).collect();
    let result = run_virtual(population, &problem, &VirtualConfig::default());
    match result {
        Err(RuntimeError::UnknownRecipient { agent }) => {
            assert_eq!(agent, AgentId::new(999));
        }
        other => panic!("expected UnknownRecipient, got {other:?}"),
    }
}

#[test]
fn virtual_run_solves_under_faults_with_exact_identity() {
    let problem = all_hold(6, 9, 10);
    let policy = LinkPolicy::lossy(100_000).with_delay(0, 2).with_reordering(2);
    let config = VirtualConfig {
        seed: 21,
        link: policy,
        ..VirtualConfig::default()
    };
    let report = run_virtual(agents(6, 0, 9), &problem, &config).expect("runs");
    assert!(report.outcome.metrics.termination.is_solved());
    let solution = report.outcome.solution.expect("solved");
    for i in 0..6 {
        assert_eq!(solution.get(VariableId::new(i)), Some(Value::new(9)));
    }
    let m = &report.outcome.metrics;
    assert_eq!(
        m.total_messages(),
        m.messages_sent - m.messages_dropped + m.messages_duplicated + m.messages_retransmitted,
        "deterministic runtime must keep the enqueued-copies identity exact"
    );
}
