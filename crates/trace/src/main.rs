//! The `discsp-trace` analyzer binary.
//!
//! ```text
//! discsp-trace audit <trace.jsonl>...    # recompute metrics, cross-check RunMetrics
//! discsp-trace summarize <trace.jsonl>   # per-agent histograms, fault timeline
//! ```
//!
//! `audit` exits non-zero if any file fails to parse, cannot be audited,
//! or audits with mismatches — it is wired into `scripts/verify.sh` and
//! the CI fault-soak job as a hard gate.

use std::fs;
use std::process::ExitCode;

use discsp_trace::{audit, parse_trace, summarize, TraceEvent};

const USAGE: &str = "usage:\n  discsp-trace audit <trace.jsonl>...\n  discsp-trace summarize <trace.jsonl>";

fn load(path: &str) -> Result<Vec<TraceEvent>, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_trace(&text).map_err(|e| format!("{path}: {e}"))
}

fn run_audit(paths: &[String]) -> ExitCode {
    let mut failed = 0usize;
    for path in paths {
        let events = match load(path) {
            Ok(events) => events,
            Err(err) => {
                eprintln!("✗ {err}");
                failed += 1;
                continue;
            }
        };
        match audit(&events) {
            Ok(report) if report.passed() => {
                println!(
                    "✓ {path}: {} run, {} events — cycle {}, maxcck {}, total_checks {} \
                     all confirmed",
                    report.runtime, report.events, report.cycles, report.maxcck,
                    report.total_checks
                );
            }
            Ok(report) => {
                eprintln!(
                    "✗ {path}: {} run, {} events — {} accounting failure(s):",
                    report.runtime,
                    report.events,
                    report.failures.len()
                );
                for failure in &report.failures {
                    eprintln!("    {failure}");
                }
                failed += 1;
            }
            Err(err) => {
                eprintln!("✗ {path}: {err}");
                failed += 1;
            }
        }
    }
    if failed > 0 {
        eprintln!("audit: {failed} of {} trace(s) failed", paths.len());
        ExitCode::FAILURE
    } else {
        println!("audit: all {} trace(s) passed", paths.len());
        ExitCode::SUCCESS
    }
}

fn run_summarize(path: &str) -> ExitCode {
    match load(path) {
        Ok(events) => {
            print!("{}", summarize(&events));
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("✗ {err}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, paths)) if cmd == "audit" && !paths.is_empty() => run_audit(paths),
        Some((cmd, [path])) if cmd == "summarize" => run_summarize(path),
        _ => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}
