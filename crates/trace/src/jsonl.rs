//! The JSONL line format: one JSON object per event, one event per line.
//!
//! The vendored offline dependency set has no `serde_json`, so both the
//! writer and the parser are hand-rolled against exactly the subset of
//! JSON this schema emits: objects with fixed keys, unsigned integers,
//! fixed enum strings, and `null`. The parser is strict — escapes,
//! floats, booleans, arrays, and duplicate keys are errors — and total:
//! hostile input yields a [`JsonlError`], never a panic.
//!
//! Every line carries an `"ev"` discriminator; see DESIGN.md §10 for
//! the full schema. `parse_line(event_to_json(e)) == e` for every
//! event (property: round-trip tests in this module and the workspace
//! golden tests).

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

use discsp_core::{AgentId, MessageClass, RunMetrics, Termination, Value, VariableId};

use crate::event::{FaultKind, RuntimeKind, TraceEvent};

/// A parse failure, located by 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonlError {
    /// 1-based line the failure was detected on.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for JsonlError {}

fn class_name(class: MessageClass) -> &'static str {
    match class {
        MessageClass::Ok => "ok",
        MessageClass::Nogood => "nogood",
        MessageClass::Other => "other",
    }
}

fn termination_name(t: Termination) -> &'static str {
    match t {
        Termination::Solved => "solved",
        Termination::CutOff => "cutoff",
        Termination::Insoluble => "insoluble",
    }
}

fn push_metrics(out: &mut String, m: &RunMetrics) {
    let _ = write!(
        out,
        "{{\"termination\":\"{}\",\"cycles\":{},\"maxcck\":{},\"total_checks\":{},\
         \"ok_messages\":{},\"nogood_messages\":{},\"other_messages\":{},\
         \"nogoods_generated\":{},\"redundant_nogoods\":{},\"largest_nogood\":{},\
         \"messages_sent\":{},\"messages_dropped\":{},\"messages_duplicated\":{},\
         \"messages_reordered\":{},\"messages_retransmitted\":{},\"max_delivery_delay\":{}}}",
        termination_name(m.termination),
        m.cycles,
        m.maxcck,
        m.total_checks,
        m.ok_messages,
        m.nogood_messages,
        m.other_messages,
        m.nogoods_generated,
        m.redundant_nogoods,
        m.largest_nogood,
        m.messages_sent,
        m.messages_dropped,
        m.messages_duplicated,
        m.messages_reordered,
        m.messages_retransmitted,
        m.max_delivery_delay,
    );
}

/// Serializes one event to its (newline-free) JSONL line.
pub fn event_to_json(event: &TraceEvent) -> String {
    let mut out = String::new();
    match event {
        TraceEvent::AgentStep {
            cycle,
            agent,
            checks,
        } => {
            let _ = write!(
                out,
                "{{\"ev\":\"agent_step\",\"cycle\":{cycle},\"agent\":{},\"checks\":{checks}}}",
                agent.raw()
            );
        }
        TraceEvent::Sent {
            cycle,
            from,
            to,
            class,
        } => {
            let _ = write!(
                out,
                "{{\"ev\":\"sent\",\"cycle\":{cycle},\"from\":{},\"to\":{},\"class\":\"{}\"}}",
                from.raw(),
                to.raw(),
                class_name(*class)
            );
        }
        TraceEvent::Delivered {
            cycle,
            from,
            to,
            class,
        } => {
            let _ = write!(
                out,
                "{{\"ev\":\"delivered\",\"cycle\":{cycle},\"from\":{},\"to\":{},\"class\":\"{}\"}}",
                from.raw(),
                to.raw(),
                class_name(*class)
            );
        }
        TraceEvent::Fault {
            cycle,
            from,
            to,
            class,
            kind,
        } => {
            let _ = write!(
                out,
                "{{\"ev\":\"fault\",\"cycle\":{cycle},\"from\":{},\"to\":{},\"class\":\"{}\",",
                from.raw(),
                to.raw(),
                class_name(*class)
            );
            match kind {
                FaultKind::Dropped => out.push_str("\"kind\":\"dropped\"}"),
                FaultKind::Duplicated => out.push_str("\"kind\":\"duplicated\"}"),
                FaultKind::Reordered => out.push_str("\"kind\":\"reordered\"}"),
                FaultKind::Delayed(ticks) => {
                    let _ = write!(out, "\"kind\":\"delayed\",\"delay\":{ticks}}}");
                }
                FaultKind::Retransmitted => out.push_str("\"kind\":\"retransmitted\"}"),
            }
        }
        TraceEvent::ValueChanged {
            cycle,
            var,
            old,
            new,
        } => {
            let _ = write!(
                out,
                "{{\"ev\":\"value_changed\",\"cycle\":{cycle},\"var\":{},\"old\":",
                var.raw()
            );
            match old {
                Some(v) => {
                    let _ = write!(out, "{}", v.raw());
                }
                None => out.push_str("null"),
            }
            let _ = write!(out, ",\"new\":{}}}", new.raw());
        }
        TraceEvent::PriorityChanged {
            cycle,
            agent,
            priority,
        } => {
            let _ = write!(
                out,
                "{{\"ev\":\"priority_changed\",\"cycle\":{cycle},\"agent\":{},\
                 \"priority\":{priority}}}",
                agent.raw()
            );
        }
        TraceEvent::NogoodLearned { cycle, agent, size } => {
            let _ = write!(
                out,
                "{{\"ev\":\"nogood_learned\",\"cycle\":{cycle},\"agent\":{},\"size\":{size}}}",
                agent.raw()
            );
        }
        TraceEvent::NogoodForgotten {
            cycle,
            agent,
            count,
        } => {
            let _ = write!(
                out,
                "{{\"ev\":\"nogood_forgotten\",\"cycle\":{cycle},\"agent\":{},\"count\":{count}}}",
                agent.raw()
            );
        }
        TraceEvent::CycleBarrier { cycle } => {
            let _ = write!(out, "{{\"ev\":\"cycle_barrier\",\"cycle\":{cycle}}}");
        }
        TraceEvent::RunEnd {
            cycle,
            runtime,
            in_flight,
            metrics,
        } => {
            let _ = write!(
                out,
                "{{\"ev\":\"run_end\",\"cycle\":{cycle},\"runtime\":\"{}\",\
                 \"in_flight\":{in_flight},\"metrics\":",
                runtime.name()
            );
            push_metrics(&mut out, metrics);
            out.push('}');
        }
    }
    out
}

/// The strict subset of JSON values this schema uses.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Json {
    Null,
    Num(u64),
    Str(String),
    Obj(BTreeMap<String, Json>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, want: u8) -> Result<(), String> {
        match self.bump() {
            Some(b) if b == want => Ok(()),
            Some(b) => Err(format!(
                "expected '{}', found '{}'",
                want as char, b as char
            )),
            None => Err(format!("expected '{}', found end of line", want as char)),
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let start = self.pos;
        loop {
            match self.bump() {
                Some(b'"') => {
                    let bytes = self.bytes.get(start..self.pos - 1).unwrap_or(&[]);
                    return String::from_utf8(bytes.to_vec())
                        .map_err(|_| "invalid utf-8 in string".to_string());
                }
                Some(b'\\') => return Err("string escapes are not part of the schema".to_string()),
                Some(_) => {}
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn parse_number(&mut self) -> Result<u64, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err("expected a digit".to_string());
        }
        let digits = self.bytes.get(start..self.pos).unwrap_or(&[]);
        let text = std::str::from_utf8(digits).map_err(|_| "invalid number".to_string())?;
        text.parse::<u64>()
            .map_err(|_| format!("number out of range: {text}"))
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b'0'..=b'9') => Ok(Json::Num(self.parse_number()?)),
            Some(b'n') => {
                for want in b"null" {
                    self.expect_byte(*want)
                        .map_err(|_| "expected null".to_string())?;
                }
                Ok(Json::Null)
            }
            Some(b) => Err(format!(
                "unexpected '{}' (schema uses only objects, unsigned integers, \
                 fixed strings, and null)",
                b as char
            )),
            None => Err("unexpected end of line".to_string()),
        }
    }

    fn parse_object(&mut self) -> Result<Json, String> {
        self.expect_byte(b'{')?;
        let mut obj = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(obj));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            let value = self.parse_value()?;
            if obj.insert(key.clone(), value).is_some() {
                return Err(format!("duplicate key \"{key}\""));
            }
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b'}') => return Ok(Json::Obj(obj)),
                Some(b) => return Err(format!("expected ',' or '}}', found '{}'", b as char)),
                None => return Err("unterminated object".to_string()),
            }
        }
    }

    fn finish(mut self) -> Result<(), String> {
        self.skip_ws();
        match self.peek() {
            None => Ok(()),
            Some(b) => Err(format!("trailing '{}' after the event object", b as char)),
        }
    }
}

fn num_field(obj: &BTreeMap<String, Json>, key: &str) -> Result<u64, String> {
    match obj.get(key) {
        Some(Json::Num(n)) => Ok(*n),
        Some(_) => Err(format!("field \"{key}\" must be an unsigned integer")),
        None => Err(format!("missing field \"{key}\"")),
    }
}

fn str_field<'a>(obj: &'a BTreeMap<String, Json>, key: &str) -> Result<&'a str, String> {
    match obj.get(key) {
        Some(Json::Str(s)) => Ok(s.as_str()),
        Some(_) => Err(format!("field \"{key}\" must be a string")),
        None => Err(format!("missing field \"{key}\"")),
    }
}

fn nullable_num_field(obj: &BTreeMap<String, Json>, key: &str) -> Result<Option<u64>, String> {
    match obj.get(key) {
        Some(Json::Num(n)) => Ok(Some(*n)),
        Some(Json::Null) => Ok(None),
        Some(_) => Err(format!("field \"{key}\" must be an unsigned integer or null")),
        None => Err(format!("missing field \"{key}\"")),
    }
}

fn agent_field(obj: &BTreeMap<String, Json>, key: &str) -> Result<AgentId, String> {
    let raw = num_field(obj, key)?;
    u32::try_from(raw)
        .map(AgentId::new)
        .map_err(|_| format!("field \"{key}\" exceeds the agent-id range"))
}

fn value_of(raw: u64, key: &str) -> Result<Value, String> {
    u16::try_from(raw)
        .map(Value::new)
        .map_err(|_| format!("field \"{key}\" exceeds the value range"))
}

fn class_field(obj: &BTreeMap<String, Json>) -> Result<MessageClass, String> {
    match str_field(obj, "class")? {
        "ok" => Ok(MessageClass::Ok),
        "nogood" => Ok(MessageClass::Nogood),
        "other" => Ok(MessageClass::Other),
        other => Err(format!("unknown message class \"{other}\"")),
    }
}

fn metrics_field(obj: &BTreeMap<String, Json>) -> Result<RunMetrics, String> {
    let m = match obj.get("metrics") {
        Some(Json::Obj(m)) => m,
        Some(_) => return Err("field \"metrics\" must be an object".to_string()),
        None => return Err("missing field \"metrics\"".to_string()),
    };
    let termination = match str_field(m, "termination")? {
        "solved" => Termination::Solved,
        "cutoff" => Termination::CutOff,
        "insoluble" => Termination::Insoluble,
        other => return Err(format!("unknown termination \"{other}\"")),
    };
    let mut metrics = RunMetrics::new(termination);
    metrics.cycles = num_field(m, "cycles")?;
    metrics.maxcck = num_field(m, "maxcck")?;
    metrics.total_checks = num_field(m, "total_checks")?;
    metrics.ok_messages = num_field(m, "ok_messages")?;
    metrics.nogood_messages = num_field(m, "nogood_messages")?;
    metrics.other_messages = num_field(m, "other_messages")?;
    metrics.nogoods_generated = num_field(m, "nogoods_generated")?;
    metrics.redundant_nogoods = num_field(m, "redundant_nogoods")?;
    metrics.largest_nogood = num_field(m, "largest_nogood")?;
    metrics.messages_sent = num_field(m, "messages_sent")?;
    metrics.messages_dropped = num_field(m, "messages_dropped")?;
    metrics.messages_duplicated = num_field(m, "messages_duplicated")?;
    metrics.messages_reordered = num_field(m, "messages_reordered")?;
    metrics.messages_retransmitted = num_field(m, "messages_retransmitted")?;
    metrics.max_delivery_delay = num_field(m, "max_delivery_delay")?;
    Ok(metrics)
}

fn event_from_object(obj: &BTreeMap<String, Json>) -> Result<TraceEvent, String> {
    let cycle = num_field(obj, "cycle")?;
    match str_field(obj, "ev")? {
        "agent_step" => Ok(TraceEvent::AgentStep {
            cycle,
            agent: agent_field(obj, "agent")?,
            checks: num_field(obj, "checks")?,
        }),
        "sent" => Ok(TraceEvent::Sent {
            cycle,
            from: agent_field(obj, "from")?,
            to: agent_field(obj, "to")?,
            class: class_field(obj)?,
        }),
        "delivered" => Ok(TraceEvent::Delivered {
            cycle,
            from: agent_field(obj, "from")?,
            to: agent_field(obj, "to")?,
            class: class_field(obj)?,
        }),
        "fault" => {
            let kind = match str_field(obj, "kind")? {
                "dropped" => FaultKind::Dropped,
                "duplicated" => FaultKind::Duplicated,
                "reordered" => FaultKind::Reordered,
                "delayed" => FaultKind::Delayed(num_field(obj, "delay")?),
                "retransmitted" => FaultKind::Retransmitted,
                other => return Err(format!("unknown fault kind \"{other}\"")),
            };
            Ok(TraceEvent::Fault {
                cycle,
                from: agent_field(obj, "from")?,
                to: agent_field(obj, "to")?,
                class: class_field(obj)?,
                kind,
            })
        }
        "value_changed" => {
            let var_raw = num_field(obj, "var")?;
            let var = u32::try_from(var_raw)
                .map(VariableId::new)
                .map_err(|_| "field \"var\" exceeds the variable-id range".to_string())?;
            let old = match nullable_num_field(obj, "old")? {
                Some(raw) => Some(value_of(raw, "old")?),
                None => None,
            };
            Ok(TraceEvent::ValueChanged {
                cycle,
                var,
                old,
                new: value_of(num_field(obj, "new")?, "new")?,
            })
        }
        "priority_changed" => Ok(TraceEvent::PriorityChanged {
            cycle,
            agent: agent_field(obj, "agent")?,
            priority: num_field(obj, "priority")?,
        }),
        "nogood_learned" => Ok(TraceEvent::NogoodLearned {
            cycle,
            agent: agent_field(obj, "agent")?,
            size: num_field(obj, "size")?,
        }),
        "nogood_forgotten" => Ok(TraceEvent::NogoodForgotten {
            cycle,
            agent: agent_field(obj, "agent")?,
            count: num_field(obj, "count")?,
        }),
        "cycle_barrier" => Ok(TraceEvent::CycleBarrier { cycle }),
        "run_end" => {
            let runtime = match str_field(obj, "runtime")? {
                "sync" => RuntimeKind::Sync,
                "virtual" => RuntimeKind::Virtual,
                "async" => RuntimeKind::Async,
                "net" => RuntimeKind::Net,
                "service" => RuntimeKind::Service,
                "sharded" => RuntimeKind::Sharded,
                other => return Err(format!("unknown runtime \"{other}\"")),
            };
            Ok(TraceEvent::RunEnd {
                cycle,
                runtime,
                in_flight: num_field(obj, "in_flight")?,
                metrics: metrics_field(obj)?,
            })
        }
        other => Err(format!("unknown event discriminator \"{other}\"")),
    }
}

fn parse_line_inner(line: &str) -> Result<TraceEvent, String> {
    let mut parser = Parser::new(line);
    let value = parser.parse_object()?;
    parser.finish()?;
    match value {
        Json::Obj(obj) => event_from_object(&obj),
        _ => Err("an event line must be a JSON object".to_string()),
    }
}

/// Parses one JSONL line into an event.
pub fn parse_line(line: &str) -> Result<TraceEvent, JsonlError> {
    parse_line_inner(line).map_err(|message| JsonlError { line: 1, message })
}

/// Parses a whole JSONL document (blank lines are skipped); errors carry
/// the offending 1-based line number.
pub fn parse_trace(text: &str) -> Result<Vec<TraceEvent>, JsonlError> {
    let mut events = Vec::new();
    for (index, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let event = parse_line_inner(trimmed).map_err(|message| JsonlError {
            line: index + 1,
            message,
        })?;
        events.push(event);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        let mut metrics = RunMetrics::new(Termination::Solved);
        metrics.cycles = 9;
        metrics.maxcck = 12;
        metrics.total_checks = 40;
        metrics.messages_sent = 7;
        metrics.messages_dropped = 1;
        metrics.messages_retransmitted = 1;
        metrics.ok_messages = 7;
        vec![
            TraceEvent::AgentStep {
                cycle: 0,
                agent: AgentId::new(3),
                checks: 11,
            },
            TraceEvent::Sent {
                cycle: 0,
                from: AgentId::new(3),
                to: AgentId::new(1),
                class: MessageClass::Ok,
            },
            TraceEvent::Fault {
                cycle: 0,
                from: AgentId::new(3),
                to: AgentId::new(1),
                class: MessageClass::Ok,
                kind: FaultKind::Delayed(2),
            },
            TraceEvent::Fault {
                cycle: 1,
                from: AgentId::new(1),
                to: AgentId::new(2),
                class: MessageClass::Nogood,
                kind: FaultKind::Dropped,
            },
            TraceEvent::Delivered {
                cycle: 3,
                from: AgentId::new(3),
                to: AgentId::new(1),
                class: MessageClass::Ok,
            },
            TraceEvent::ValueChanged {
                cycle: 3,
                var: VariableId::new(1),
                old: None,
                new: Value::new(2),
            },
            TraceEvent::ValueChanged {
                cycle: 4,
                var: VariableId::new(1),
                old: Some(Value::new(2)),
                new: Value::new(0),
            },
            TraceEvent::PriorityChanged {
                cycle: 4,
                agent: AgentId::new(1),
                priority: 3,
            },
            TraceEvent::NogoodLearned {
                cycle: 4,
                agent: AgentId::new(1),
                size: 2,
            },
            TraceEvent::NogoodForgotten {
                cycle: 4,
                agent: AgentId::new(1),
                count: 3,
            },
            TraceEvent::CycleBarrier { cycle: 4 },
            TraceEvent::RunEnd {
                cycle: 9,
                runtime: RuntimeKind::Virtual,
                in_flight: 0,
                metrics,
            },
        ]
    }

    #[test]
    fn every_event_round_trips() {
        for event in sample_events() {
            let line = event_to_json(&event);
            assert!(!line.contains('\n'));
            let back = parse_line(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(back, event, "{line}");
        }
    }

    #[test]
    fn document_round_trips_with_blank_lines() {
        let events = sample_events();
        let mut text = String::new();
        for event in &events {
            text.push_str(&event_to_json(event));
            text.push('\n');
            text.push('\n');
        }
        assert_eq!(parse_trace(&text), Ok(events));
    }

    #[test]
    fn errors_locate_the_line() {
        let good = event_to_json(&TraceEvent::CycleBarrier { cycle: 1 });
        let text = format!("{good}\nnot json\n");
        let err = parse_trace(&text).expect_err("second line is garbage");
        assert_eq!(err.line, 2);
    }

    #[test]
    fn hostile_lines_are_rejected_not_panicked() {
        for bad in [
            "",
            "{",
            "{}",
            "[1,2]",
            "{\"ev\":\"agent_step\"}",
            "{\"ev\":\"nope\",\"cycle\":1}",
            "{\"ev\":\"agent_step\",\"cycle\":1,\"agent\":1,\"checks\":-3}",
            "{\"ev\":\"agent_step\",\"cycle\":1,\"agent\":99999999999,\"checks\":0}",
            "{\"ev\":\"agent_step\",\"cycle\":1,\"agent\":1,\"checks\":1.5}",
            "{\"ev\":\"sent\",\"cycle\":1,\"from\":0,\"to\":1,\"class\":\"bogus\"}",
            "{\"ev\":\"agent_step\",\"cycle\":1,\"cycle\":2,\"agent\":0,\"checks\":0}",
            "{\"ev\":\"cycle_barrier\",\"cycle\":1} trailing",
            "{\"ev\":\"run_end\",\"cycle\":1,\"runtime\":\"sync\",\"in_flight\":0,\"metrics\":{}}",
            "{\"ev\":\"agent_step\",\"cycle\":18446744073709551616,\"agent\":0,\"checks\":0}",
        ] {
            assert!(parse_line(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn escapes_are_out_of_schema() {
        assert!(parse_line("{\"ev\":\"cycle_\\u0062arrier\",\"cycle\":1}").is_err());
    }
}
