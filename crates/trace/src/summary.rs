//! Human-oriented trace summaries: per-agent activity histograms, the
//! fault timeline, and the maximum link-layer queue depth.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::event::{canonical_sort, FaultKind, TraceEvent};

#[derive(Debug, Default, Clone)]
struct AgentRow {
    steps: u64,
    checks: u64,
    sent: u64,
    received: u64,
    nogoods: u64,
    forgotten: u64,
}

/// Renders a multi-line summary of a trace: run header, per-agent
/// check/message histogram, fault counts and timeline, and the maximum
/// number of messages simultaneously queued in the link layer.
pub fn summarize(events: &[TraceEvent]) -> String {
    let mut sorted: Vec<TraceEvent> = events.to_vec();
    canonical_sort(&mut sorted);

    let mut agents: BTreeMap<u32, AgentRow> = BTreeMap::new();
    let mut faults: Vec<&TraceEvent> = Vec::new();
    let mut dropped = 0u64;
    let mut duplicated = 0u64;
    let mut reordered = 0u64;
    let mut retransmitted = 0u64;
    let mut delayed = 0u64;
    let mut max_delay = 0u64;
    let mut value_changes = 0u64;
    let mut priority_changes = 0u64;
    let mut queue_depth: i64 = 0;
    let mut max_queue_depth: i64 = 0;
    let mut header = String::from("(no run_end event)");

    for event in &sorted {
        match event {
            TraceEvent::AgentStep { agent, checks, .. } => {
                let row = agents.entry(agent.raw()).or_default();
                row.steps += 1;
                row.checks += checks;
            }
            TraceEvent::Sent { from, .. } => {
                agents.entry(from.raw()).or_default().sent += 1;
                queue_depth += 1;
                max_queue_depth = max_queue_depth.max(queue_depth);
            }
            TraceEvent::Delivered { to, .. } => {
                agents.entry(to.raw()).or_default().received += 1;
                queue_depth -= 1;
            }
            TraceEvent::Fault { kind, .. } => {
                faults.push(event);
                match kind {
                    FaultKind::Dropped => {
                        dropped += 1;
                        queue_depth -= 1;
                    }
                    FaultKind::Duplicated => {
                        duplicated += 1;
                        queue_depth += 1;
                        max_queue_depth = max_queue_depth.max(queue_depth);
                    }
                    FaultKind::Reordered => reordered += 1,
                    FaultKind::Delayed(ticks) => {
                        delayed += 1;
                        max_delay = max_delay.max(*ticks);
                    }
                    FaultKind::Retransmitted => {
                        retransmitted += 1;
                        queue_depth += 1;
                        max_queue_depth = max_queue_depth.max(queue_depth);
                    }
                }
            }
            TraceEvent::NogoodLearned { agent, .. } => {
                agents.entry(agent.raw()).or_default().nogoods += 1;
            }
            TraceEvent::NogoodForgotten { agent, count, .. } => {
                agents.entry(agent.raw()).or_default().forgotten += count;
            }
            TraceEvent::ValueChanged { .. } => value_changes += 1,
            TraceEvent::PriorityChanged { .. } => priority_changes += 1,
            TraceEvent::CycleBarrier { .. } => {}
            TraceEvent::RunEnd {
                cycle,
                runtime,
                in_flight,
                metrics,
            } => {
                header = format!(
                    "{} run: {} at cycle {cycle} ({in_flight} in flight, \
                     maxcck {}, total checks {})",
                    runtime, metrics.termination, metrics.maxcck, metrics.total_checks
                );
            }
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "{header}");
    let _ = writeln!(out, "events: {}", sorted.len());

    let _ = writeln!(out, "\nper-agent activity:");
    let _ = writeln!(
        out,
        "  {:>6} {:>7} {:>9} {:>6} {:>6} {:>8} {:>7}",
        "agent", "steps", "checks", "sent", "recv", "nogoods", "forgot"
    );
    for (agent, row) in &agents {
        let _ = writeln!(
            out,
            "  {:>6} {:>7} {:>9} {:>6} {:>6} {:>8} {:>7}",
            format!("a{agent}"),
            row.steps,
            row.checks,
            row.sent,
            row.received,
            row.nogoods,
            row.forgotten
        );
    }

    let _ = writeln!(
        out,
        "\nfaults: {dropped} dropped, {duplicated} duplicated, {reordered} reordered, \
         {retransmitted} retransmitted, {delayed} delayed (max +{max_delay})"
    );
    let _ = writeln!(out, "max queue depth: {max_queue_depth}");
    let _ = writeln!(
        out,
        "value changes: {value_changes}, priority changes: {priority_changes}"
    );

    if !faults.is_empty() {
        let _ = writeln!(out, "\nfault timeline:");
        for fault in faults {
            let _ = writeln!(out, "  {fault}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use discsp_core::{AgentId, MessageClass, RunMetrics, Termination};

    #[test]
    fn summary_tabulates_agents_and_faults() {
        let a0 = AgentId::new(0);
        let a1 = AgentId::new(1);
        let mut metrics = RunMetrics::new(Termination::Solved);
        metrics.maxcck = 4;
        metrics.total_checks = 4;
        let events = vec![
            TraceEvent::AgentStep {
                cycle: 0,
                agent: a0,
                checks: 4,
            },
            TraceEvent::Sent {
                cycle: 0,
                from: a0,
                to: a1,
                class: MessageClass::Ok,
            },
            TraceEvent::Sent {
                cycle: 0,
                from: a0,
                to: a1,
                class: MessageClass::Ok,
            },
            TraceEvent::Fault {
                cycle: 0,
                from: a0,
                to: a1,
                class: MessageClass::Ok,
                kind: FaultKind::Dropped,
            },
            TraceEvent::Delivered {
                cycle: 1,
                from: a0,
                to: a1,
                class: MessageClass::Ok,
            },
            TraceEvent::RunEnd {
                cycle: 2,
                runtime: crate::RuntimeKind::Virtual,
                in_flight: 0,
                metrics,
            },
        ];
        let text = summarize(&events);
        assert!(text.contains("virtual run: solved"), "{text}");
        assert!(text.contains("a0"), "{text}");
        assert!(text.contains("1 dropped"), "{text}");
        assert!(text.contains("max queue depth: 2"), "{text}");
        assert!(text.contains("fault timeline"), "{text}");
    }

    #[test]
    fn empty_trace_summarizes_without_panicking() {
        let text = summarize(&[]);
        assert!(text.contains("no run_end"));
    }
}
