//! Unified execution-trace pipeline for the DisCSP runtimes.
//!
//! The paper's claims rest on two counters — `cycle` and `maxcck` — so
//! any accounting drift between the four runtimes (synchronous cycle
//! simulator, deterministic discrete-event executor, threaded runtime,
//! multi-process TCP coordinator) silently invalidates the
//! reproduction. This crate turns trace cross-validation into a
//! standing accounting-bug detector:
//!
//! * [`TraceEvent`] — one schema for the full run lifecycle, emitted
//!   uniformly by every executor (agent steps with check counts,
//!   sent/fault/delivered message phases, value and priority changes,
//!   learned nogoods, wave barriers, and a terminal [`TraceEvent::RunEnd`]
//!   carrying the runtime-reported [`RunMetrics`](discsp_core::RunMetrics));
//! * [`TraceSink`] — where events go: an in-memory [`RingBuffer`]
//!   (optionally bounded, evictions counted), a streaming
//!   [`JsonlWriter`], or [`NullSink`];
//! * [`audit`] — independently recomputes `cycle`, `maxcck`,
//!   `total_checks`, and the message-conservation identity
//!   `total == sent − dropped + duplicated + retransmitted` from a
//!   trace and cross-checks the runtime's own metrics;
//! * [`summarize`] — per-agent check/message histograms, fault
//!   timeline, max queue depth;
//! * the `discsp-trace` binary — `audit` and `summarize` over JSONL
//!   trace files (see DESIGN.md §10 for the line format).
//!
//! Everything here reasons in virtual ticks: no wall clock, no
//! randomness, no dependencies beyond `discsp-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod audit;
mod event;
pub mod jsonl;
mod sink;
mod summary;
mod wire;

pub use audit::{audit, Audit, AuditError, AuditFailure, AuditField};
pub use event::{canonical_sort, render_trace, FaultKind, RuntimeKind, TraceEvent};
pub use jsonl::{event_to_json, parse_line, parse_trace, JsonlError};
pub use sink::{JsonlWriter, NullSink, RingBuffer, TraceSink};
pub use summary::summarize;
