//! The accounting auditor: recompute the paper's counters from a trace
//! and cross-check them against the runtime-reported [`RunMetrics`].
//!
//! A trace is self-auditing: its terminal [`TraceEvent::RunEnd`] carries
//! the metrics the runtime claimed, so the auditor needs no side
//! channel. It independently recomputes
//!
//! * `total_checks` — the sum of every [`TraceEvent::AgentStep`]'s
//!   check count;
//! * `maxcck` — the sum over [`TraceEvent::CycleBarrier`]-delimited
//!   waves of the maximum per-step check count inside each wave (the
//!   threaded runtime emits no barriers, so its recomputed `maxcck` is
//!   0 — matching its reported 0: concurrent checks have no wave
//!   maximum);
//! * every message counter (`Sent` events, `Fault` events by kind) and
//!   the PR-3 conservation identity
//!   `total == sent − dropped + duplicated + retransmitted`;
//! * delivery coverage: on the deterministic runtimes every enqueued
//!   copy is either delivered in the trace or still in flight at
//!   `RunEnd`, so one missing `Delivered` event is detected exactly;
//! * the learning counters (`nogoods_generated`, `largest_nogood`).
//!
//! Structural problems (no `RunEnd`, several of them, an empty trace)
//! are [`AuditError`]s; accounting mismatches are collected as pointed
//! diagnostics in [`Audit::failures`] so one audit reports every
//! discrepancy at once.

use std::fmt;

use discsp_core::RunMetrics;

use crate::event::{canonical_sort, FaultKind, RuntimeKind, TraceEvent};

/// A trace that cannot be audited at all (as opposed to one that audits
/// and fails).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditError {
    /// The trace has no events.
    Empty,
    /// No terminal [`TraceEvent::RunEnd`] — the runtime never sealed the
    /// trace with its own accounting.
    MissingRunEnd,
    /// More than one [`TraceEvent::RunEnd`]: the input mixes runs.
    MultipleRunEnd(usize),
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditError::Empty => f.write_str("empty trace"),
            AuditError::MissingRunEnd => {
                f.write_str("trace has no run_end event; cannot audit without reported metrics")
            }
            AuditError::MultipleRunEnd(count) => {
                write!(f, "trace has {count} run_end events; audit one run at a time")
            }
        }
    }
}

impl std::error::Error for AuditError {}

/// Which audited invariant a failure is about. Machine-readable so
/// tools (the fault-schedule explorer, CI gates) can classify verdicts
/// without string matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[non_exhaustive]
pub enum AuditField {
    /// `total_checks` recomputed from agent steps.
    TotalChecks,
    /// `maxcck` recomputed from barrier-delimited waves.
    Maxcck,
    /// Final cycle reported by `RunEnd` vs `RunMetrics::cycles`.
    Cycle,
    /// `Sent` events vs `messages_sent`.
    MessagesSent,
    /// Dropped faults vs `messages_dropped`.
    MessagesDropped,
    /// Duplicated faults vs `messages_duplicated`.
    MessagesDuplicated,
    /// Reordered faults vs `messages_reordered`.
    MessagesReordered,
    /// Retransmitted faults vs `messages_retransmitted`.
    MessagesRetransmitted,
    /// Largest delay fault vs `max_delivery_delay`.
    MaxDeliveryDelay,
    /// The conservation identity
    /// `total == sent − dropped + duplicated + retransmitted`.
    Conservation,
    /// Delivered events vs the link layer's enqueued copies.
    DeliveryCoverage,
    /// `NogoodLearned` events vs `nogoods_generated`.
    NogoodsGenerated,
    /// Largest `NogoodLearned` size vs `largest_nogood`.
    LargestNogood,
    /// An event stamped after the run's final cycle.
    EventAfterEnd,
}

impl fmt::Display for AuditField {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            AuditField::TotalChecks => "total_checks",
            AuditField::Maxcck => "maxcck",
            AuditField::Cycle => "cycle",
            AuditField::MessagesSent => "messages_sent",
            AuditField::MessagesDropped => "messages_dropped",
            AuditField::MessagesDuplicated => "messages_duplicated",
            AuditField::MessagesReordered => "messages_reordered",
            AuditField::MessagesRetransmitted => "messages_retransmitted",
            AuditField::MaxDeliveryDelay => "max_delivery_delay",
            AuditField::Conservation => "message_conservation",
            AuditField::DeliveryCoverage => "delivery_coverage",
            AuditField::NogoodsGenerated => "nogoods_generated",
            AuditField::LargestNogood => "largest_nogood",
            AuditField::EventAfterEnd => "event_after_end",
        };
        f.write_str(name)
    }
}

/// One accounting discrepancy: which invariant broke, the two values
/// that disagree, and the human-pointed diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditFailure {
    /// The audited invariant that failed.
    pub field: AuditField,
    /// The value the trace recomputes (for identity checks, the value
    /// the identity's right-hand side evaluates to).
    pub recomputed: i128,
    /// The value the runtime reported.
    pub reported: i128,
    /// The full human-readable diagnostic.
    pub message: String,
}

impl AuditFailure {
    /// Whether the diagnostic text mentions `needle` (convenience for
    /// tests and log grepping).
    pub fn contains(&self, needle: &str) -> bool {
        self.message.contains(needle)
    }
}

impl fmt::Display for AuditFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// The recomputed counters plus every mismatch found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Audit {
    /// Which executor produced the trace.
    pub runtime: RuntimeKind,
    /// The metrics the runtime reported (from `RunEnd`).
    pub metrics: RunMetrics,
    /// Final cycle/tick reported by `RunEnd`.
    pub cycles: u64,
    /// `maxcck` recomputed from barrier-delimited waves.
    pub maxcck: u64,
    /// `total_checks` recomputed from agent steps.
    pub total_checks: u64,
    /// `Sent` events counted in the trace.
    pub sent: u64,
    /// `Delivered` events counted in the trace.
    pub delivered: u64,
    /// Learned nogoods evicted by forgetting passes, summed over every
    /// [`TraceEvent::NogoodForgotten`] event. Informational only:
    /// forgetting has no [`RunMetrics`] counterpart to cross-check, and
    /// the paper's counters (checks, cycles, messages, learning) are
    /// unchanged by eviction.
    pub nogoods_forgotten: u64,
    /// Events audited.
    pub events: usize,
    /// Every accounting discrepancy, machine-classified and
    /// human-pointed.
    pub failures: Vec<AuditFailure>,
}

impl Audit {
    /// Whether every invariant held.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Whether some failure concerns `field`.
    pub fn failed(&self, field: AuditField) -> bool {
        self.failures.iter().any(|f| f.field == field)
    }
}

fn mismatch(failures: &mut Vec<AuditFailure>, field: AuditField, recomputed: u64, reported: u64) {
    if recomputed != reported {
        failures.push(AuditFailure {
            field,
            recomputed: i128::from(recomputed),
            reported: i128::from(reported),
            message: format!(
                "{field}: trace recomputes {recomputed}, RunMetrics reports {reported}"
            ),
        });
    }
}

/// Audits one run's trace. Event order does not matter: the trace is
/// canonically sorted first, so the coordinator-merged net trace and the
/// in-process virtual trace audit identically.
pub fn audit(events: &[TraceEvent]) -> Result<Audit, AuditError> {
    if events.is_empty() {
        return Err(AuditError::Empty);
    }
    let mut sorted: Vec<TraceEvent> = events.to_vec();
    canonical_sort(&mut sorted);

    let ends: Vec<(u64, RuntimeKind, u64, RunMetrics)> = sorted
        .iter()
        .filter_map(|event| match event {
            TraceEvent::RunEnd {
                cycle,
                runtime,
                in_flight,
                metrics,
            } => Some((*cycle, *runtime, *in_flight, metrics.clone())),
            _ => None,
        })
        .collect();
    let (end_cycle, runtime, in_flight, metrics) = match ends.as_slice() {
        [] => return Err(AuditError::MissingRunEnd),
        [one] => one.clone(),
        many => return Err(AuditError::MultipleRunEnd(many.len())),
    };

    let mut total_checks: u64 = 0;
    let mut maxcck: u64 = 0;
    let mut wave_max: u64 = 0;
    let mut sent: u64 = 0;
    let mut delivered: u64 = 0;
    let mut dropped: u64 = 0;
    let mut duplicated: u64 = 0;
    let mut reordered: u64 = 0;
    let mut retransmitted: u64 = 0;
    let mut max_delay: u64 = 0;
    let mut nogoods: u64 = 0;
    let mut largest_nogood: u64 = 0;
    let mut forgotten: u64 = 0;
    let mut max_event_cycle: u64 = 0;

    for event in &sorted {
        if !matches!(event, TraceEvent::RunEnd { .. }) {
            max_event_cycle = max_event_cycle.max(event.cycle());
        }
        match event {
            TraceEvent::AgentStep { checks, .. } => {
                total_checks += checks;
                wave_max = wave_max.max(*checks);
            }
            TraceEvent::CycleBarrier { .. } => {
                maxcck += wave_max;
                wave_max = 0;
            }
            TraceEvent::Sent { .. } => sent += 1,
            TraceEvent::Delivered { .. } => delivered += 1,
            TraceEvent::Fault { kind, .. } => match kind {
                FaultKind::Dropped => dropped += 1,
                FaultKind::Duplicated => duplicated += 1,
                FaultKind::Reordered => reordered += 1,
                FaultKind::Delayed(ticks) => max_delay = max_delay.max(*ticks),
                FaultKind::Retransmitted => retransmitted += 1,
            },
            TraceEvent::NogoodLearned { size, .. } => {
                nogoods += 1;
                largest_nogood = largest_nogood.max(*size);
            }
            TraceEvent::NogoodForgotten { count, .. } => forgotten += count,
            // Decision events record what an agent chose, not how much it
            // spent choosing; they carry nothing to cross-check.
            TraceEvent::ValueChanged { .. } | TraceEvent::PriorityChanged { .. } => {}
            TraceEvent::RunEnd { .. } => {}
        }
    }

    let mut failures = Vec::new();

    // The paper's two headline counters plus the raw check total.
    mismatch(&mut failures, AuditField::TotalChecks, total_checks, metrics.total_checks);
    mismatch(&mut failures, AuditField::Maxcck, maxcck, metrics.maxcck);
    mismatch(&mut failures, AuditField::Cycle, end_cycle, metrics.cycles);

    // Message accounting: the trace must explain every counter.
    mismatch(&mut failures, AuditField::MessagesSent, sent, metrics.messages_sent);
    mismatch(
        &mut failures,
        AuditField::MessagesDropped,
        dropped,
        metrics.messages_dropped,
    );
    mismatch(
        &mut failures,
        AuditField::MessagesDuplicated,
        duplicated,
        metrics.messages_duplicated,
    );
    mismatch(
        &mut failures,
        AuditField::MessagesReordered,
        reordered,
        metrics.messages_reordered,
    );
    mismatch(
        &mut failures,
        AuditField::MessagesRetransmitted,
        retransmitted,
        metrics.messages_retransmitted,
    );
    mismatch(
        &mut failures,
        AuditField::MaxDeliveryDelay,
        max_delay,
        metrics.max_delivery_delay,
    );

    // The PR-3 conservation identity, on the runtime's own counters.
    let conserved = i128::from(metrics.messages_sent) - i128::from(metrics.messages_dropped)
        + i128::from(metrics.messages_duplicated)
        + i128::from(metrics.messages_retransmitted);
    if i128::from(metrics.total_messages()) != conserved {
        failures.push(AuditFailure {
            field: AuditField::Conservation,
            recomputed: conserved,
            reported: i128::from(metrics.total_messages()),
            message: format!(
                "message conservation: total ({}) != sent − dropped + duplicated + \
                 retransmitted ({} − {} + {} + {} = {conserved})",
                metrics.total_messages(),
                metrics.messages_sent,
                metrics.messages_dropped,
                metrics.messages_duplicated,
                metrics.messages_retransmitted,
            ),
        });
    }

    // Delivery coverage. On the deterministic runtimes every enqueued
    // copy is either delivered in the trace or still queued at RunEnd;
    // the threaded runtime tears workers down with copies in channels,
    // so only the upper bound holds there.
    let expected_deliveries =
        i128::from(metrics.total_messages()) - i128::from(in_flight);
    if runtime == RuntimeKind::Async {
        if i128::from(delivered) > i128::from(metrics.total_messages()) {
            failures.push(AuditFailure {
                field: AuditField::DeliveryCoverage,
                recomputed: i128::from(delivered),
                reported: i128::from(metrics.total_messages()),
                message: format!(
                    "delivered events ({delivered}) exceed the {} messages the link \
                     layer ever enqueued",
                    metrics.total_messages(),
                ),
            });
        }
    } else if i128::from(delivered) != expected_deliveries {
        failures.push(AuditFailure {
            field: AuditField::DeliveryCoverage,
            recomputed: i128::from(delivered),
            reported: expected_deliveries,
            message: format!(
                "delivered events ({delivered}) do not cover the link layer's deliveries \
                 (total {} − {in_flight} in flight = {expected_deliveries}): a Delivered \
                 event is missing from the trace or the runtime under-delivered",
                metrics.total_messages(),
            ),
        });
    }

    // Learning counters.
    mismatch(
        &mut failures,
        AuditField::NogoodsGenerated,
        nogoods,
        metrics.nogoods_generated,
    );
    mismatch(
        &mut failures,
        AuditField::LargestNogood,
        largest_nogood,
        metrics.largest_nogood,
    );

    // No event may claim a cycle after the run ended (coarse async
    // stamps excepted).
    if runtime != RuntimeKind::Async && max_event_cycle > end_cycle {
        failures.push(AuditFailure {
            field: AuditField::EventAfterEnd,
            recomputed: i128::from(max_event_cycle),
            reported: i128::from(end_cycle),
            message: format!(
                "an event is stamped at cycle {max_event_cycle}, after the run ended at \
                 cycle {end_cycle}"
            ),
        });
    }

    Ok(Audit {
        runtime,
        metrics,
        cycles: end_cycle,
        maxcck,
        total_checks,
        sent,
        delivered,
        nogoods_forgotten: forgotten,
        events: sorted.len(),
        failures,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use discsp_core::{AgentId, MessageClass, Termination};

    /// A tiny, fully consistent hand-built trace: two waves, one
    /// dropped-then-retransmitted message, one learned nogood.
    fn consistent_trace() -> Vec<TraceEvent> {
        let a0 = AgentId::new(0);
        let a1 = AgentId::new(1);
        let mut metrics = RunMetrics::new(Termination::Solved);
        metrics.cycles = 3;
        metrics.total_checks = 5 + 2 + 4;
        metrics.maxcck = 5 + 4;
        metrics.messages_sent = 3;
        metrics.messages_dropped = 1;
        metrics.messages_retransmitted = 1;
        metrics.ok_messages = 2;
        metrics.nogood_messages = 1;
        metrics.nogoods_generated = 1;
        metrics.largest_nogood = 2;
        vec![
            TraceEvent::AgentStep {
                cycle: 0,
                agent: a0,
                checks: 5,
            },
            TraceEvent::AgentStep {
                cycle: 0,
                agent: a1,
                checks: 2,
            },
            TraceEvent::Sent {
                cycle: 0,
                from: a0,
                to: a1,
                class: MessageClass::Ok,
            },
            TraceEvent::Sent {
                cycle: 0,
                from: a1,
                to: a0,
                class: MessageClass::Ok,
            },
            TraceEvent::Fault {
                cycle: 0,
                from: a1,
                to: a0,
                class: MessageClass::Ok,
                kind: FaultKind::Dropped,
            },
            TraceEvent::CycleBarrier { cycle: 0 },
            TraceEvent::Delivered {
                cycle: 1,
                from: a0,
                to: a1,
                class: MessageClass::Ok,
            },
            TraceEvent::AgentStep {
                cycle: 1,
                agent: a1,
                checks: 4,
            },
            TraceEvent::NogoodLearned {
                cycle: 1,
                agent: a1,
                size: 2,
            },
            TraceEvent::Sent {
                cycle: 1,
                from: a1,
                to: a0,
                class: MessageClass::Nogood,
            },
            TraceEvent::Fault {
                cycle: 1,
                from: a1,
                to: a0,
                class: MessageClass::Ok,
                kind: FaultKind::Retransmitted,
            },
            TraceEvent::CycleBarrier { cycle: 1 },
            TraceEvent::Delivered {
                cycle: 2,
                from: a1,
                to: a0,
                class: MessageClass::Nogood,
            },
            TraceEvent::Delivered {
                cycle: 2,
                from: a1,
                to: a0,
                class: MessageClass::Ok,
            },
            TraceEvent::CycleBarrier { cycle: 2 },
            TraceEvent::RunEnd {
                cycle: 3,
                runtime: RuntimeKind::Virtual,
                in_flight: 0,
                metrics,
            },
        ]
    }

    #[test]
    fn consistent_trace_passes() {
        let report = audit(&consistent_trace()).expect("auditable");
        assert!(report.passed(), "failures: {:?}", report.failures);
        assert_eq!(report.total_checks, 11);
        assert_eq!(report.maxcck, 9);
        assert_eq!(report.cycles, 3);
        assert_eq!(report.sent, 3);
        assert_eq!(report.delivered, 3);
    }

    #[test]
    fn forgetting_events_are_tallied_but_never_fail_the_audit() {
        let mut trace = consistent_trace();
        trace.insert(
            trace.len() - 1,
            TraceEvent::NogoodForgotten {
                cycle: 2,
                agent: AgentId::new(1),
                count: 4,
            },
        );
        trace.insert(
            trace.len() - 1,
            TraceEvent::NogoodForgotten {
                cycle: 2,
                agent: AgentId::new(0),
                count: 1,
            },
        );
        let report = audit(&trace).expect("auditable");
        assert!(report.passed(), "failures: {:?}", report.failures);
        assert_eq!(report.nogoods_forgotten, 5);
    }

    #[test]
    fn audit_ignores_event_order() {
        let mut shuffled = consistent_trace();
        shuffled.reverse();
        let report = audit(&shuffled).expect("auditable");
        assert!(report.passed(), "failures: {:?}", report.failures);
    }

    #[test]
    fn dropped_delivered_event_is_detected_with_a_pointed_diagnostic() {
        let mut corrupted = consistent_trace();
        let index = corrupted
            .iter()
            .position(|e| matches!(e, TraceEvent::Delivered { .. }))
            .expect("has a delivery");
        corrupted.remove(index);
        let report = audit(&corrupted).expect("auditable");
        assert!(!report.passed());
        assert!(
            report
                .failures
                .iter()
                .any(|f| f.contains("delivered events (2)") && f.contains("Delivered")),
            "diagnostic must point at the missing delivery: {:?}",
            report.failures
        );
    }

    #[test]
    fn wrong_checks_show_up_as_both_check_counters() {
        let mut corrupted = consistent_trace();
        for event in &mut corrupted {
            if let TraceEvent::AgentStep { checks, .. } = event {
                *checks += 1;
                break;
            }
        }
        let report = audit(&corrupted).expect("auditable");
        assert!(report.failed(AuditField::TotalChecks), "{:?}", report.failures);
        assert!(report.failed(AuditField::Maxcck), "{:?}", report.failures);
        let checks = report
            .failures
            .iter()
            .find(|f| f.field == AuditField::TotalChecks)
            .expect("has the total_checks verdict");
        assert_eq!(checks.recomputed, 12);
        assert_eq!(checks.reported, 11);
        assert!(checks.to_string().contains("total_checks"));
    }

    #[test]
    fn structural_problems_are_errors() {
        assert_eq!(audit(&[]), Err(AuditError::Empty));
        let barrier = vec![TraceEvent::CycleBarrier { cycle: 0 }];
        assert_eq!(audit(&barrier), Err(AuditError::MissingRunEnd));
        let mut two_runs = consistent_trace();
        two_runs.extend(consistent_trace());
        assert_eq!(audit(&two_runs), Err(AuditError::MultipleRunEnd(2)));
    }

    #[test]
    fn async_traces_audit_without_barriers() {
        let a0 = AgentId::new(0);
        let mut metrics = RunMetrics::new(Termination::Solved);
        metrics.cycles = 4;
        metrics.total_checks = 6;
        metrics.messages_sent = 1;
        metrics.ok_messages = 1;
        let events = vec![
            TraceEvent::AgentStep {
                cycle: 0,
                agent: a0,
                checks: 6,
            },
            TraceEvent::Sent {
                cycle: 0,
                from: a0,
                to: a0,
                class: MessageClass::Ok,
            },
            TraceEvent::Delivered {
                cycle: 1,
                from: a0,
                to: a0,
                class: MessageClass::Ok,
            },
            TraceEvent::RunEnd {
                cycle: 4,
                runtime: RuntimeKind::Async,
                in_flight: 0,
                metrics,
            },
        ];
        let report = audit(&events).expect("auditable");
        assert!(report.passed(), "failures: {:?}", report.failures);
        assert_eq!(report.maxcck, 0, "no barriers, no wave maxima");
    }
}
