//! Trace sinks: where runtimes put events.
//!
//! Every executor records through the [`TraceSink`] trait so the choice
//! of storage (in-memory ring buffer, streaming JSONL file, nothing at
//! all) is the caller's, not the runtime's. `record` is infallible by
//! design — a tracing failure must never abort a solve — so fallible
//! sinks latch their first error and surface it at `finish` time.

use std::collections::VecDeque;
use std::io::{self, Write};

use crate::event::TraceEvent;
use crate::jsonl::event_to_json;

/// A destination for trace events.
pub trait TraceSink {
    /// Records one event. Must be cheap when [`TraceSink::enabled`]
    /// returns `false`.
    fn record(&mut self, event: TraceEvent);

    /// Whether recording is live. Runtimes may skip building events
    /// entirely when this is `false`.
    fn enabled(&self) -> bool {
        true
    }
}

/// A sink that drops everything; `enabled()` is `false` so runtimes can
/// skip event construction.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _event: TraceEvent) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// The default in-memory sink: an optionally bounded ring buffer.
///
/// Unbounded by default (a trace is proportional to total traffic);
/// with a capacity it evicts the oldest events and counts them in
/// [`RingBuffer::dropped`], so an auditor can refuse a truncated trace
/// instead of reporting spurious mismatches.
#[derive(Debug)]
pub struct RingBuffer {
    events: VecDeque<TraceEvent>,
    enabled: bool,
    capacity: Option<usize>,
    dropped: u64,
}

impl RingBuffer {
    /// An enabled, unbounded buffer.
    pub fn new() -> Self {
        RingBuffer {
            events: VecDeque::new(),
            enabled: true,
            capacity: None,
            dropped: 0,
        }
    }

    /// A buffer that records nothing (`enabled()` is `false`).
    pub fn disabled() -> Self {
        RingBuffer {
            events: VecDeque::new(),
            enabled: false,
            capacity: None,
            dropped: 0,
        }
    }

    /// An enabled buffer keeping at most `capacity` most-recent events.
    pub fn with_capacity(capacity: usize) -> Self {
        RingBuffer {
            events: VecDeque::with_capacity(capacity.min(1024)),
            enabled: true,
            capacity: Some(capacity),
            dropped: 0,
        }
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the buffer holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted because the buffer was at capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drains the buffered events in recording order.
    pub fn take(&mut self) -> Vec<TraceEvent> {
        self.events.drain(..).collect()
    }

    /// Iterates the buffered events in recording order without draining
    /// them (used by session snapshots, which must leave the live trace
    /// in place so the session can keep running).
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }
}

impl Default for RingBuffer {
    fn default() -> Self {
        RingBuffer::new()
    }
}

impl TraceSink for RingBuffer {
    fn record(&mut self, event: TraceEvent) {
        if !self.enabled {
            return;
        }
        if let Some(cap) = self.capacity {
            if cap == 0 {
                self.dropped += 1;
                return;
            }
            if self.events.len() >= cap {
                self.events.pop_front();
                self.dropped += 1;
            }
        }
        self.events.push_back(event);
    }

    fn enabled(&self) -> bool {
        self.enabled
    }
}

/// A streaming sink writing one JSONL line per event (the format read
/// back by [`crate::jsonl::parse_trace`] and the `discsp-trace` binary).
///
/// I/O errors latch: the first failure stops further writes and is
/// returned by [`JsonlWriter::finish`].
#[derive(Debug)]
pub struct JsonlWriter<W: Write> {
    out: W,
    error: Option<io::Error>,
}

impl<W: Write> JsonlWriter<W> {
    /// Wraps a writer. Buffering is the caller's choice (pass a
    /// `BufWriter` for files).
    pub fn new(out: W) -> Self {
        JsonlWriter { out, error: None }
    }

    /// Flushes and returns the inner writer, or the first error any
    /// `record` hit.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(err) = self.error.take() {
            return Err(err);
        }
        self.out.flush()?;
        Ok(self.out)
    }
}

impl<W: Write> TraceSink for JsonlWriter<W> {
    fn record(&mut self, event: TraceEvent) {
        if self.error.is_some() {
            return;
        }
        let mut line = event_to_json(&event);
        line.push('\n');
        if let Err(err) = self.out.write_all(line.as_bytes()) {
            self.error = Some(err);
        }
    }

    fn enabled(&self) -> bool {
        self.error.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use discsp_core::AgentId;

    fn step(cycle: u64) -> TraceEvent {
        TraceEvent::AgentStep {
            cycle,
            agent: AgentId::new(0),
            checks: 1,
        }
    }

    #[test]
    fn ring_buffer_records_in_order() {
        let mut buf = RingBuffer::new();
        assert!(buf.enabled());
        buf.record(step(1));
        buf.record(step(2));
        assert_eq!(buf.len(), 2);
        let events = buf.take();
        assert_eq!(events[0].cycle(), 1);
        assert_eq!(events[1].cycle(), 2);
        assert!(buf.is_empty());
    }

    #[test]
    fn iter_peeks_without_draining() {
        let mut buf = RingBuffer::new();
        buf.record(step(1));
        buf.record(step(2));
        let cycles: Vec<u64> = buf.iter().map(|e| e.cycle()).collect();
        assert_eq!(cycles, vec![1, 2]);
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn disabled_buffer_records_nothing() {
        let mut buf = RingBuffer::disabled();
        assert!(!buf.enabled());
        buf.record(step(1));
        assert!(buf.is_empty());
        assert_eq!(buf.dropped(), 0);
    }

    #[test]
    fn bounded_buffer_evicts_oldest_and_counts() {
        let mut buf = RingBuffer::with_capacity(2);
        buf.record(step(1));
        buf.record(step(2));
        buf.record(step(3));
        assert_eq!(buf.dropped(), 1);
        let events = buf.take();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].cycle(), 2);
        assert_eq!(events[1].cycle(), 3);
    }

    #[test]
    fn null_sink_is_disabled() {
        let mut sink = NullSink;
        sink.record(step(1));
        assert!(!sink.enabled());
    }

    #[test]
    fn jsonl_writer_streams_lines() {
        let mut sink = JsonlWriter::new(Vec::new());
        sink.record(step(1));
        sink.record(step(2));
        let bytes = sink.finish().expect("no io error on Vec");
        let text = String::from_utf8(bytes).expect("utf8");
        assert_eq!(text.lines().count(), 2);
        assert!(text.starts_with("{\"ev\":\"agent_step\""));
    }

    struct FailAfter(usize);

    impl Write for FailAfter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.0 == 0 {
                return Err(io::Error::other("disk full"));
            }
            self.0 -= 1;
            Ok(buf.len())
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn jsonl_writer_latches_first_error() {
        let mut sink = JsonlWriter::new(FailAfter(1));
        sink.record(step(1));
        assert!(sink.enabled());
        sink.record(step(2));
        assert!(!sink.enabled());
        sink.record(step(3));
        assert!(sink.finish().is_err());
    }
}
