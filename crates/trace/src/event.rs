//! The unified trace event schema emitted by every runtime.
//!
//! Events cover the full run lifecycle: agent activations with their
//! check counts, the three message phases (sent / fault-injected /
//! delivered), observable state changes (value, priority, learned
//! nogoods), wave barriers, and a single terminal [`TraceEvent::RunEnd`]
//! carrying the runtime-reported [`RunMetrics`] so a trace is
//! self-auditing (see [`crate::audit`]).

use std::fmt;

use discsp_core::{AgentId, MessageClass, RunMetrics, Value, VariableId};
use serde::{Deserialize, Serialize};

/// What an injected link fault did to a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The message was dropped (and parked for later retransmission).
    Dropped,
    /// An extra copy of the message was enqueued.
    Duplicated,
    /// The message was assigned a delivery tick that overtakes an
    /// earlier message on the same link.
    Reordered,
    /// The message was delayed by this many virtual ticks.
    Delayed(u64),
    /// A previously dropped message was re-enqueued by the recovery pass.
    Retransmitted,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Dropped => f.write_str("dropped"),
            FaultKind::Duplicated => f.write_str("duplicated"),
            FaultKind::Reordered => f.write_str("reordered"),
            FaultKind::Delayed(ticks) => write!(f, "delayed +{ticks}"),
            FaultKind::Retransmitted => f.write_str("retransmitted"),
        }
    }
}

/// Which executor produced a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RuntimeKind {
    /// The synchronous cycle simulator (`SyncSimulator`).
    Sync,
    /// The deterministic discrete-event executor (`run_virtual`).
    Virtual,
    /// The threads-and-channels runtime (`run_async`).
    Async,
    /// The multi-process TCP coordinator (`discsp-net`).
    Net,
    /// The multi-session solve service (`discsp-service`), which drives
    /// many session state machines over one scheduler.
    Service,
    /// The M:N sharded event-loop executor (`run_sharded`), which runs
    /// the virtual-time semantics with worker threads owning per-shard
    /// agent arenas.
    Sharded,
}

impl RuntimeKind {
    /// The stable lower-case name used on the JSONL wire.
    pub fn name(&self) -> &'static str {
        match self {
            RuntimeKind::Sync => "sync",
            RuntimeKind::Virtual => "virtual",
            RuntimeKind::Async => "async",
            RuntimeKind::Net => "net",
            RuntimeKind::Service => "service",
            RuntimeKind::Sharded => "sharded",
        }
    }
}

impl fmt::Display for RuntimeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One observable event during a run.
///
/// `cycle` is the synchronous cycle number on the cycle simulator and
/// the virtual tick everywhere else; the threaded runtime stamps events
/// with the observer-advanced tick, which orders events only coarsely.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// An agent activated (processed a batch, a start, or a nudge) and
    /// charged `checks` nogood checks for the step.
    AgentStep {
        /// Cycle / virtual tick of the activation.
        cycle: u64,
        /// The agent that stepped.
        agent: AgentId,
        /// Nogood checks charged for this step.
        checks: u64,
    },
    /// A message was handed to the link layer.
    Sent {
        /// Cycle / tick of the send.
        cycle: u64,
        /// Sending agent.
        from: AgentId,
        /// Receiving agent.
        to: AgentId,
        /// Message class.
        class: MessageClass,
    },
    /// A message was delivered at the start of a cycle.
    Delivered {
        /// Delivery cycle.
        cycle: u64,
        /// Sending agent.
        from: AgentId,
        /// Receiving agent.
        to: AgentId,
        /// Message class.
        class: MessageClass,
    },
    /// The link layer injected a fault into a message (recorded by the
    /// deterministic faulty-link runtime; `cycle` is the virtual tick at
    /// which the sender emitted the message).
    Fault {
        /// Virtual tick of the send.
        cycle: u64,
        /// Sending agent.
        from: AgentId,
        /// Intended receiving agent.
        to: AgentId,
        /// Message class.
        class: MessageClass,
        /// What the fault did.
        kind: FaultKind,
    },
    /// A variable's announced value changed during a cycle.
    ValueChanged {
        /// The cycle in which the change became visible.
        cycle: u64,
        /// The variable.
        var: VariableId,
        /// The previous value (`None` on the first observation).
        old: Option<Value>,
        /// The new value.
        new: Value,
    },
    /// An agent's AWC priority changed.
    PriorityChanged {
        /// The cycle in which the change became visible.
        cycle: u64,
        /// The agent whose priority rose.
        agent: AgentId,
        /// The new priority.
        priority: u64,
    },
    /// An agent generated a new nogood of `size` elements.
    NogoodLearned {
        /// Cycle / tick of the learning step.
        cycle: u64,
        /// The learning agent.
        agent: AgentId,
        /// Element count of the learned nogood.
        size: u64,
    },
    /// An agent evicted `count` learned nogoods from its store during a
    /// forgetting pass (activity-based; initial constraints are never
    /// evicted). Forgetting changes no metric the paper measures, so the
    /// auditor tallies these events informationally only.
    NogoodForgotten {
        /// Cycle / tick of the forgetting pass.
        cycle: u64,
        /// The forgetting agent.
        agent: AgentId,
        /// How many learned nogoods were evicted.
        count: u64,
    },
    /// A synchronization barrier: every agent activation since the
    /// previous barrier belonged to one concurrent wave. `maxcck` is the
    /// sum over barriers of the maximum [`TraceEvent::AgentStep`] check
    /// count inside each wave. The threaded runtime has no barriers (its
    /// `maxcck` is 0 by definition).
    CycleBarrier {
        /// Cycle / tick the wave completed at.
        cycle: u64,
    },
    /// Terminal event: the runtime's own accounting, recorded so the
    /// trace can be audited against it without side-channel data.
    RunEnd {
        /// Final cycle / tick (equals `metrics.cycles`).
        cycle: u64,
        /// Which executor produced the trace.
        runtime: RuntimeKind,
        /// Messages still queued in the link layer at termination.
        in_flight: u64,
        /// The metrics the runtime reported for this run.
        metrics: RunMetrics,
    },
}

impl TraceEvent {
    /// The cycle this event belongs to.
    pub fn cycle(&self) -> u64 {
        match self {
            TraceEvent::AgentStep { cycle, .. }
            | TraceEvent::Sent { cycle, .. }
            | TraceEvent::Delivered { cycle, .. }
            | TraceEvent::Fault { cycle, .. }
            | TraceEvent::ValueChanged { cycle, .. }
            | TraceEvent::PriorityChanged { cycle, .. }
            | TraceEvent::NogoodLearned { cycle, .. }
            | TraceEvent::NogoodForgotten { cycle, .. }
            | TraceEvent::CycleBarrier { cycle }
            | TraceEvent::RunEnd { cycle, .. } => *cycle,
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::AgentStep {
                cycle,
                agent,
                checks,
            } => write!(f, "[{cycle:>4}] {agent} steps ({checks} checks)"),
            TraceEvent::Sent {
                cycle,
                from,
                to,
                class,
            } => write!(f, "[{cycle:>4}] {from} ⇢ {to}  ({class})"),
            TraceEvent::Delivered {
                cycle,
                from,
                to,
                class,
            } => write!(f, "[{cycle:>4}] {from} → {to}  ({class})"),
            TraceEvent::Fault {
                cycle,
                from,
                to,
                class,
                kind,
            } => write!(f, "[{cycle:>4}] {from} ⇏ {to}  ({class}) {kind}"),
            TraceEvent::ValueChanged {
                cycle,
                var,
                old,
                new,
            } => match old {
                Some(old) => write!(f, "[{cycle:>4}] {var}: {old} ⇒ {new}"),
                None => write!(f, "[{cycle:>4}] {var}: ⇒ {new}"),
            },
            TraceEvent::PriorityChanged {
                cycle,
                agent,
                priority,
            } => write!(f, "[{cycle:>4}] {agent} priority ← {priority}"),
            TraceEvent::NogoodLearned { cycle, agent, size } => {
                write!(f, "[{cycle:>4}] {agent} learned nogood (size {size})")
            }
            TraceEvent::NogoodForgotten {
                cycle,
                agent,
                count,
            } => {
                write!(f, "[{cycle:>4}] {agent} forgot {count} nogoods")
            }
            TraceEvent::CycleBarrier { cycle } => write!(f, "[{cycle:>4}] ─ barrier ─"),
            TraceEvent::RunEnd {
                cycle,
                runtime,
                in_flight,
                metrics,
            } => write!(
                f,
                "[{cycle:>4}] run end: {} on {runtime} ({in_flight} in flight)",
                metrics.termination
            ),
        }
    }
}

fn class_rank(class: MessageClass) -> u64 {
    match class {
        MessageClass::Ok => 0,
        MessageClass::Nogood => 1,
        MessageClass::Other => 2,
    }
}

fn fault_rank(kind: FaultKind) -> u64 {
    match kind {
        FaultKind::Dropped => 0,
        FaultKind::Duplicated => 1,
        FaultKind::Reordered => 2,
        FaultKind::Delayed(ticks) => 3 + ticks,
        FaultKind::Retransmitted => u64::MAX,
    }
}

fn sort_key(event: &TraceEvent) -> (u64, u8, u64, u64, u64, u64) {
    match event {
        TraceEvent::Delivered {
            cycle,
            from,
            to,
            class,
        } => (
            *cycle,
            0,
            u64::from(from.raw()),
            u64::from(to.raw()),
            class_rank(*class),
            0,
        ),
        TraceEvent::AgentStep {
            cycle,
            agent,
            checks,
        } => (*cycle, 1, u64::from(agent.raw()), *checks, 0, 0),
        TraceEvent::ValueChanged {
            cycle,
            var,
            old,
            new,
        } => (
            *cycle,
            2,
            u64::from(var.raw()),
            old.map_or(0, |v| u64::from(v.raw()) + 1),
            u64::from(new.raw()),
            0,
        ),
        TraceEvent::PriorityChanged {
            cycle,
            agent,
            priority,
        } => (*cycle, 3, u64::from(agent.raw()), *priority, 0, 0),
        TraceEvent::NogoodLearned { cycle, agent, size } => {
            (*cycle, 4, u64::from(agent.raw()), *size, 0, 0)
        }
        TraceEvent::NogoodForgotten {
            cycle,
            agent,
            count,
        } => (*cycle, 5, u64::from(agent.raw()), *count, 0, 0),
        TraceEvent::Sent {
            cycle,
            from,
            to,
            class,
        } => (
            *cycle,
            6,
            u64::from(from.raw()),
            u64::from(to.raw()),
            class_rank(*class),
            0,
        ),
        TraceEvent::Fault {
            cycle,
            from,
            to,
            class,
            kind,
        } => (
            *cycle,
            7,
            u64::from(from.raw()),
            u64::from(to.raw()),
            class_rank(*class),
            fault_rank(*kind),
        ),
        TraceEvent::CycleBarrier { cycle } => (*cycle, 8, 0, 0, 0, 0),
        TraceEvent::RunEnd { cycle, .. } => (*cycle, 9, 0, 0, 0, 0),
    }
}

/// Sorts a trace into the canonical order: by cycle, then by a fixed
/// event-kind rank (deliveries → steps → state changes → forgets →
/// sends → faults → barrier → run end), then by the event's own fields.
///
/// Two traces of the same run taken by executors with different
/// interleaving freedom (e.g. the virtual and net runtimes) compare
/// equal after canonical sorting iff they contain the same event
/// multiset. The sort is stable, so duplicate events keep their
/// relative order.
pub fn canonical_sort(events: &mut [TraceEvent]) {
    events.sort_by_key(sort_key);
}

/// Renders a trace grouped by cycle, with a compact one-line-per-event
/// body.
pub fn render_trace(events: &[TraceEvent]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let mut last_cycle = None;
    for event in events {
        if last_cycle != Some(event.cycle()) {
            if last_cycle.is_some() {
                out.push('\n');
            }
            let _ = writeln!(out, "— cycle {} —", event.cycle());
            last_cycle = Some(event.cycle());
        }
        let _ = writeln!(out, "{event}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use discsp_core::{RunMetrics, Termination};

    #[test]
    fn events_know_their_cycle() {
        let delivered = TraceEvent::Delivered {
            cycle: 3,
            from: AgentId::new(0),
            to: AgentId::new(1),
            class: MessageClass::Ok,
        };
        assert_eq!(delivered.cycle(), 3);
        let changed = TraceEvent::ValueChanged {
            cycle: 4,
            var: VariableId::new(2),
            old: Some(Value::new(0)),
            new: Value::new(1),
        };
        assert_eq!(changed.cycle(), 4);
        let end = TraceEvent::RunEnd {
            cycle: 9,
            runtime: RuntimeKind::Virtual,
            in_flight: 0,
            metrics: RunMetrics::new(Termination::Solved),
        };
        assert_eq!(end.cycle(), 9);
    }

    #[test]
    fn display_forms() {
        let delivered = TraceEvent::Delivered {
            cycle: 12,
            from: AgentId::new(0),
            to: AgentId::new(1),
            class: MessageClass::Nogood,
        };
        assert_eq!(delivered.to_string(), "[  12] a0 → a1  (nogood)");
        let first = TraceEvent::ValueChanged {
            cycle: 1,
            var: VariableId::new(5),
            old: None,
            new: Value::new(2),
        };
        assert_eq!(first.to_string(), "[   1] x5: ⇒ 2");
        let fault = TraceEvent::Fault {
            cycle: 7,
            from: AgentId::new(2),
            to: AgentId::new(3),
            class: MessageClass::Ok,
            kind: FaultKind::Delayed(4),
        };
        assert_eq!(fault.to_string(), "[   7] a2 ⇏ a3  (ok?) delayed +4");
        assert_eq!(fault.cycle(), 7);
        assert_eq!(FaultKind::Dropped.to_string(), "dropped");
        assert_eq!(FaultKind::Retransmitted.to_string(), "retransmitted");
        let step = TraceEvent::AgentStep {
            cycle: 2,
            agent: AgentId::new(4),
            checks: 17,
        };
        assert_eq!(step.to_string(), "[   2] a4 steps (17 checks)");
        let learned = TraceEvent::NogoodLearned {
            cycle: 3,
            agent: AgentId::new(1),
            size: 2,
        };
        assert_eq!(learned.to_string(), "[   3] a1 learned nogood (size 2)");
        let forgotten = TraceEvent::NogoodForgotten {
            cycle: 5,
            agent: AgentId::new(2),
            count: 7,
        };
        assert_eq!(forgotten.to_string(), "[   5] a2 forgot 7 nogoods");
        assert_eq!(forgotten.cycle(), 5);
    }

    #[test]
    fn runtime_kinds_have_stable_names() {
        assert_eq!(RuntimeKind::Sync.to_string(), "sync");
        assert_eq!(RuntimeKind::Virtual.to_string(), "virtual");
        assert_eq!(RuntimeKind::Async.to_string(), "async");
        assert_eq!(RuntimeKind::Net.to_string(), "net");
        assert_eq!(RuntimeKind::Service.to_string(), "service");
    }

    #[test]
    fn rendering_groups_by_cycle() {
        let events = vec![
            TraceEvent::ValueChanged {
                cycle: 1,
                var: VariableId::new(0),
                old: None,
                new: Value::new(0),
            },
            TraceEvent::Delivered {
                cycle: 2,
                from: AgentId::new(0),
                to: AgentId::new(1),
                class: MessageClass::Ok,
            },
            TraceEvent::ValueChanged {
                cycle: 2,
                var: VariableId::new(1),
                old: Some(Value::new(0)),
                new: Value::new(1),
            },
        ];
        let text = render_trace(&events);
        assert!(text.contains("— cycle 1 —"));
        assert!(text.contains("— cycle 2 —"));
        assert_eq!(text.matches("— cycle").count(), 2);
    }

    #[test]
    fn empty_trace_renders_empty() {
        assert!(render_trace(&[]).is_empty());
    }

    #[test]
    fn canonical_sort_orders_by_cycle_then_kind() {
        let step = TraceEvent::AgentStep {
            cycle: 1,
            agent: AgentId::new(0),
            checks: 0,
        };
        let delivered = TraceEvent::Delivered {
            cycle: 1,
            from: AgentId::new(1),
            to: AgentId::new(0),
            class: MessageClass::Ok,
        };
        let barrier = TraceEvent::CycleBarrier { cycle: 0 };
        let mut events = vec![step.clone(), delivered.clone(), barrier.clone()];
        canonical_sort(&mut events);
        assert_eq!(events, vec![barrier, delivered, step]);
    }

    #[test]
    fn canonical_sort_is_interleaving_independent() {
        let mut a = vec![
            TraceEvent::Sent {
                cycle: 2,
                from: AgentId::new(0),
                to: AgentId::new(1),
                class: MessageClass::Ok,
            },
            TraceEvent::AgentStep {
                cycle: 2,
                agent: AgentId::new(1),
                checks: 3,
            },
            TraceEvent::AgentStep {
                cycle: 2,
                agent: AgentId::new(0),
                checks: 5,
            },
        ];
        let mut b = vec![a[2].clone(), a[0].clone(), a[1].clone()];
        canonical_sort(&mut a);
        canonical_sort(&mut b);
        assert_eq!(a, b);
    }
}
