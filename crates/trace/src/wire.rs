//! Wire encodings for trace events, so the net runtime can ship each
//! agent's event stream back to the coordinator inside `Final` frames.
//!
//! These impls live here (not in `discsp-core`) because the event types
//! are defined here and `Wire` is a foreign trait from `discsp-core`.

use discsp_core::{AgentId, MessageClass, RunMetrics, Value, VariableId, Wire, WireError, WireReader};

use crate::event::{FaultKind, RuntimeKind, TraceEvent};

impl Wire for FaultKind {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            FaultKind::Dropped => out.push(0),
            FaultKind::Duplicated => out.push(1),
            FaultKind::Reordered => out.push(2),
            FaultKind::Delayed(ticks) => {
                out.push(3);
                ticks.encode(out);
            }
            FaultKind::Retransmitted => out.push(4),
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8("FaultKind")? {
            0 => Ok(FaultKind::Dropped),
            1 => Ok(FaultKind::Duplicated),
            2 => Ok(FaultKind::Reordered),
            3 => Ok(FaultKind::Delayed(r.u64("FaultKind.Delayed")?)),
            4 => Ok(FaultKind::Retransmitted),
            tag => Err(WireError::BadTag {
                context: "FaultKind",
                tag,
            }),
        }
    }
}

impl Wire for RuntimeKind {
    fn encode(&self, out: &mut Vec<u8>) {
        let tag: u8 = match self {
            RuntimeKind::Sync => 0,
            RuntimeKind::Virtual => 1,
            RuntimeKind::Async => 2,
            RuntimeKind::Net => 3,
            RuntimeKind::Service => 4,
            RuntimeKind::Sharded => 5,
        };
        out.push(tag);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8("RuntimeKind")? {
            0 => Ok(RuntimeKind::Sync),
            1 => Ok(RuntimeKind::Virtual),
            2 => Ok(RuntimeKind::Async),
            3 => Ok(RuntimeKind::Net),
            4 => Ok(RuntimeKind::Service),
            5 => Ok(RuntimeKind::Sharded),
            tag => Err(WireError::BadTag {
                context: "RuntimeKind",
                tag,
            }),
        }
    }
}

impl Wire for TraceEvent {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            TraceEvent::AgentStep {
                cycle,
                agent,
                checks,
            } => {
                out.push(0);
                cycle.encode(out);
                agent.encode(out);
                checks.encode(out);
            }
            TraceEvent::Sent {
                cycle,
                from,
                to,
                class,
            } => {
                out.push(1);
                cycle.encode(out);
                from.encode(out);
                to.encode(out);
                class.encode(out);
            }
            TraceEvent::Delivered {
                cycle,
                from,
                to,
                class,
            } => {
                out.push(2);
                cycle.encode(out);
                from.encode(out);
                to.encode(out);
                class.encode(out);
            }
            TraceEvent::Fault {
                cycle,
                from,
                to,
                class,
                kind,
            } => {
                out.push(3);
                cycle.encode(out);
                from.encode(out);
                to.encode(out);
                class.encode(out);
                kind.encode(out);
            }
            TraceEvent::ValueChanged {
                cycle,
                var,
                old,
                new,
            } => {
                out.push(4);
                cycle.encode(out);
                var.encode(out);
                old.encode(out);
                new.encode(out);
            }
            TraceEvent::PriorityChanged {
                cycle,
                agent,
                priority,
            } => {
                out.push(5);
                cycle.encode(out);
                agent.encode(out);
                priority.encode(out);
            }
            TraceEvent::NogoodLearned { cycle, agent, size } => {
                out.push(6);
                cycle.encode(out);
                agent.encode(out);
                size.encode(out);
            }
            TraceEvent::CycleBarrier { cycle } => {
                out.push(7);
                cycle.encode(out);
            }
            TraceEvent::NogoodForgotten {
                cycle,
                agent,
                count,
            } => {
                out.push(9);
                cycle.encode(out);
                agent.encode(out);
                count.encode(out);
            }
            TraceEvent::RunEnd {
                cycle,
                runtime,
                in_flight,
                metrics,
            } => {
                out.push(8);
                cycle.encode(out);
                runtime.encode(out);
                in_flight.encode(out);
                metrics.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8("TraceEvent")? {
            0 => Ok(TraceEvent::AgentStep {
                cycle: r.u64("TraceEvent.cycle")?,
                agent: AgentId::decode(r)?,
                checks: r.u64("TraceEvent.checks")?,
            }),
            1 => Ok(TraceEvent::Sent {
                cycle: r.u64("TraceEvent.cycle")?,
                from: AgentId::decode(r)?,
                to: AgentId::decode(r)?,
                class: MessageClass::decode(r)?,
            }),
            2 => Ok(TraceEvent::Delivered {
                cycle: r.u64("TraceEvent.cycle")?,
                from: AgentId::decode(r)?,
                to: AgentId::decode(r)?,
                class: MessageClass::decode(r)?,
            }),
            3 => Ok(TraceEvent::Fault {
                cycle: r.u64("TraceEvent.cycle")?,
                from: AgentId::decode(r)?,
                to: AgentId::decode(r)?,
                class: MessageClass::decode(r)?,
                kind: FaultKind::decode(r)?,
            }),
            4 => Ok(TraceEvent::ValueChanged {
                cycle: r.u64("TraceEvent.cycle")?,
                var: VariableId::decode(r)?,
                old: Option::<Value>::decode(r)?,
                new: Value::decode(r)?,
            }),
            5 => Ok(TraceEvent::PriorityChanged {
                cycle: r.u64("TraceEvent.cycle")?,
                agent: AgentId::decode(r)?,
                priority: r.u64("TraceEvent.priority")?,
            }),
            6 => Ok(TraceEvent::NogoodLearned {
                cycle: r.u64("TraceEvent.cycle")?,
                agent: AgentId::decode(r)?,
                size: r.u64("TraceEvent.size")?,
            }),
            7 => Ok(TraceEvent::CycleBarrier {
                cycle: r.u64("TraceEvent.cycle")?,
            }),
            8 => Ok(TraceEvent::RunEnd {
                cycle: r.u64("TraceEvent.cycle")?,
                runtime: RuntimeKind::decode(r)?,
                in_flight: r.u64("TraceEvent.in_flight")?,
                metrics: RunMetrics::decode(r)?,
            }),
            9 => Ok(TraceEvent::NogoodForgotten {
                cycle: r.u64("TraceEvent.cycle")?,
                agent: AgentId::decode(r)?,
                count: r.u64("TraceEvent.count")?,
            }),
            tag => Err(WireError::BadTag {
                context: "TraceEvent",
                tag,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use discsp_core::Termination;

    fn roundtrip(event: TraceEvent) {
        let bytes = event.to_bytes();
        assert_eq!(TraceEvent::from_bytes(&bytes).as_ref(), Ok(&event));
        for cut in 0..bytes.len() {
            assert!(
                TraceEvent::from_bytes(&bytes[..cut]).is_err(),
                "prefix {cut} decoded"
            );
        }
    }

    #[test]
    fn all_variants_roundtrip() {
        let a0 = AgentId::new(0);
        let a9 = AgentId::new(9);
        roundtrip(TraceEvent::AgentStep {
            cycle: 7,
            agent: a9,
            checks: 123,
        });
        roundtrip(TraceEvent::Sent {
            cycle: 1,
            from: a0,
            to: a9,
            class: MessageClass::Ok,
        });
        roundtrip(TraceEvent::Delivered {
            cycle: 2,
            from: a9,
            to: a0,
            class: MessageClass::Nogood,
        });
        roundtrip(TraceEvent::Fault {
            cycle: 3,
            from: a0,
            to: a9,
            class: MessageClass::Other,
            kind: FaultKind::Delayed(4),
        });
        roundtrip(TraceEvent::ValueChanged {
            cycle: 4,
            var: VariableId::new(2),
            old: None,
            new: Value::new(1),
        });
        roundtrip(TraceEvent::ValueChanged {
            cycle: 4,
            var: VariableId::new(2),
            old: Some(Value::new(1)),
            new: Value::new(0),
        });
        roundtrip(TraceEvent::PriorityChanged {
            cycle: 5,
            agent: a9,
            priority: 42,
        });
        roundtrip(TraceEvent::NogoodLearned {
            cycle: 6,
            agent: a0,
            size: 3,
        });
        roundtrip(TraceEvent::NogoodForgotten {
            cycle: 7,
            agent: a9,
            count: 12,
        });
        roundtrip(TraceEvent::CycleBarrier { cycle: 8 });
        let mut metrics = RunMetrics::new(Termination::CutOff);
        metrics.cycles = 10_000;
        metrics.maxcck = 77;
        roundtrip(TraceEvent::RunEnd {
            cycle: 10_000,
            runtime: RuntimeKind::Net,
            in_flight: 5,
            metrics,
        });
    }

    #[test]
    fn vectors_of_events_roundtrip() {
        let events = vec![
            TraceEvent::CycleBarrier { cycle: 0 },
            TraceEvent::AgentStep {
                cycle: 0,
                agent: AgentId::new(1),
                checks: 2,
            },
        ];
        let bytes = events.to_bytes();
        assert_eq!(Vec::<TraceEvent>::from_bytes(&bytes), Ok(events));
    }

    #[test]
    fn bad_tags_are_rejected() {
        assert!(matches!(
            TraceEvent::from_bytes(&[99]),
            Err(WireError::BadTag {
                context: "TraceEvent",
                ..
            })
        ));
        assert!(matches!(
            RuntimeKind::from_bytes(&[9]),
            Err(WireError::BadTag { .. })
        ));
        assert!(matches!(
            FaultKind::from_bytes(&[9]),
            Err(WireError::BadTag { .. })
        ));
    }
}
