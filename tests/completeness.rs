//! Integration: completeness properties — insoluble instances must be
//! *proven* insoluble by complete configurations, and learning
//! restrictions must trade that proof away exactly as the paper states.

use discsp::prelude::*;

/// K4 with 3 colors: the smallest insoluble coloring benchmark.
fn k4() -> DistributedCsp {
    let mut b = DistributedCsp::builder();
    let vars: Vec<_> = (0..4).map(|_| b.variable(Domain::new(3))).collect();
    for i in 0..4 {
        for j in (i + 1)..4 {
            b.not_equal(vars[i], vars[j]).expect("valid");
        }
    }
    b.build().expect("valid")
}

/// Pigeonhole-flavored unsatisfiable SAT: x must be both true and false
/// via forced chains.
fn unsat_cnf() -> DistributedCsp {
    let mut b = DistributedCsp::builder();
    let x = b.variable(Domain::BOOL);
    let y = b.variable(Domain::BOOL);
    let z = b.variable(Domain::BOOL);
    // (x ∨ y) ∧ (x ∨ ¬y) ∧ (¬x ∨ z) ∧ (¬x ∨ ¬z)
    b.clause(&[(x, true), (y, true)]).expect("valid");
    b.clause(&[(x, true), (y, false)]).expect("valid");
    b.clause(&[(x, false), (z, true)]).expect("valid");
    b.clause(&[(x, false), (z, false)]).expect("valid");
    b.build().expect("valid")
}

#[test]
fn awc_resolvent_proves_k4_insoluble() {
    let problem = k4();
    for initial in [
        Assignment::total([Value::new(0); 4]),
        Assignment::total([Value::new(0), Value::new(1), Value::new(2), Value::new(0)]),
    ] {
        let run = AwcSolver::new(AwcConfig::resolvent())
            .cycle_limit(5_000)
            .solve_sync(&problem, &initial)
            .expect("fits");
        assert_eq!(run.outcome.metrics.termination, Termination::Insoluble);
        assert!(run.outcome.solution.is_none());
    }
}

#[test]
fn awc_mcs_proves_k4_insoluble() {
    let run = AwcSolver::new(AwcConfig::mcs())
        .cycle_limit(5_000)
        .solve_sync(&k4(), &Assignment::total([Value::new(0); 4]))
        .expect("fits");
    assert_eq!(run.outcome.metrics.termination, Termination::Insoluble);
}

#[test]
fn awc_resolvent_proves_unsat_cnf_insoluble() {
    let problem = unsat_cnf();
    let run = AwcSolver::new(AwcConfig::resolvent())
        .cycle_limit(5_000)
        .solve_sync(&problem, &Assignment::total([Value::FALSE; 3]))
        .expect("fits");
    assert_eq!(run.outcome.metrics.termination, Termination::Insoluble);
}

#[test]
fn abt_proves_both_insoluble() {
    for problem in [k4(), unsat_cnf()] {
        let n = problem.num_vars();
        let run = AbtSolver::new()
            .cycle_limit(5_000)
            .solve_sync(&problem, &Assignment::total(vec![Value::new(0); n]))
            .expect("fits");
        assert_eq!(run.outcome.metrics.termination, Termination::Insoluble);
    }
}

#[test]
fn no_learning_cannot_prove_insolubility() {
    // §1 footnote: without nogoods the AWC never gets stuck — and §4.1:
    // no-learning makes the AWC incomplete. It must hit the cutoff.
    let run = AwcSolver::new(AwcConfig::no_learning())
        .cycle_limit(400)
        .solve_sync(&k4(), &Assignment::total([Value::new(0); 4]))
        .expect("fits");
    assert_eq!(run.outcome.metrics.termination, Termination::CutOff);
}

#[test]
fn db_cannot_prove_insolubility() {
    let run = DbaSolver::new()
        .cycle_limit(400)
        .solve_sync(&k4(), &Assignment::total([Value::new(0); 4]))
        .expect("fits");
    assert_eq!(run.outcome.metrics.termination, Termination::CutOff);
}

#[test]
fn centralized_solver_confirms_insolubility() {
    use discsp::cspsolve::SolveResult;
    assert_eq!(Backtracker::new(&k4()).solve(), SolveResult::Unsatisfiable);
    assert_eq!(
        Backtracker::new(&unsat_cnf()).solve(),
        SolveResult::Unsatisfiable
    );
}

#[test]
fn size_bounded_learning_may_lose_the_proof() {
    // 1stRslv records only unary nogoods — far too weak to derive the
    // empty nogood on K4 within the budget (footnote 6: size-bounded
    // learning makes the AWC incomplete). The run must not *claim*
    // insolubility wrongly nor crash; cutoff is the expected outcome.
    let run = AwcSolver::new(AwcConfig::kth_resolvent(1))
        .cycle_limit(300)
        .solve_sync(&k4(), &Assignment::total([Value::new(0); 4]))
        .expect("fits");
    assert!(matches!(
        run.outcome.metrics.termination,
        Termination::CutOff | Termination::Insoluble
    ));
}
