//! Integration: the M:N sharded executor reproduces `run_virtual`
//! bit-for-bit through the real solvers, independent of worker count.

use discsp::prelude::*;
use discsp::runtime::FaultSchedule;
use discsp::trace::RuntimeKind;

fn small_coloring() -> DistributedCsp {
    coloring_to_discsp(&paper_coloring(20, 13)).expect("encode")
}

/// The fault policy exercised by the deterministic sweep: 10% drops, 2%
/// duplicates, delivery delayed up to 2 ticks, 2-tick reordering window.
fn faulty() -> LinkPolicy {
    LinkPolicy::lossy(100_000)
        .with_duplication(20_000)
        .with_delay(0, 2)
        .with_reordering(2)
}

fn faulty_base(seed: u64) -> VirtualConfig {
    VirtualConfig {
        seed,
        link: faulty(),
        record_trace: true,
        ..VirtualConfig::default()
    }
}

/// Drops the final `RunEnd` event, whose `runtime` field is the one
/// legitimate difference between a virtual and a sharded trace.
fn strip_run_end(trace: &[TraceEvent]) -> Vec<TraceEvent> {
    trace
        .iter()
        .filter(|e| !matches!(e, TraceEvent::RunEnd { .. }))
        .cloned()
        .collect()
}

#[test]
fn awc_sharded_is_worker_count_independent_and_matches_virtual() {
    let problem = small_coloring();
    let init = Assignment::total(vec![Value::new(0); 20]);
    let solver = AwcSolver::new(AwcConfig::resolvent());
    for seed in [7u64, 424_242] {
        let base = faulty_base(seed);
        let reference = solver.solve_virtual(&problem, &init, &base).expect("fits");
        assert_eq!(
            reference.outcome.metrics.termination,
            Termination::Solved,
            "seed {seed}"
        );
        for workers in [1usize, 2, 4, 8] {
            let config = ShardConfig::with_base(base.clone(), workers);
            let run = solver
                .solve_sharded(&problem, &init, &config)
                .expect("fits");
            assert_eq!(
                run.outcome, reference.outcome,
                "seed {seed} workers {workers}: metrics + solution"
            );
            assert_eq!(run.ticks, reference.ticks, "seed {seed} workers {workers}");
            assert_eq!(run.activations, reference.activations);
            assert_eq!(run.nudges, reference.nudges);
            assert_eq!(
                run.fault_log, reference.fault_log,
                "seed {seed} workers {workers}: fault counters"
            );
            assert_eq!(
                strip_run_end(&run.trace),
                strip_run_end(&reference.trace),
                "seed {seed} workers {workers}: trace"
            );
        }
    }
}

#[test]
fn dba_and_abt_sharded_match_their_virtual_runs() {
    let problem = small_coloring();
    let init = Assignment::total(vec![Value::new(0); 20]);
    let base = faulty_base(11);

    let dba = DbaSolver::new();
    let dba_ref = dba.solve_virtual(&problem, &init, &base).expect("fits");
    let abt = AbtSolver::new();
    let abt_ref = abt.solve_virtual(&problem, &init, &base).expect("fits");
    for workers in [1usize, 2, 4, 8] {
        let config = ShardConfig::with_base(base.clone(), workers);
        let d = dba.solve_sharded(&problem, &init, &config).expect("fits");
        assert_eq!(d.outcome, dba_ref.outcome, "dba workers {workers}");
        assert_eq!(
            strip_run_end(&d.trace),
            strip_run_end(&dba_ref.trace),
            "dba workers {workers}: trace"
        );
        let a = abt.solve_sharded(&problem, &init, &config).expect("fits");
        assert_eq!(a.outcome, abt_ref.outcome, "abt workers {workers}");
        assert_eq!(
            strip_run_end(&a.trace),
            strip_run_end(&abt_ref.trace),
            "abt workers {workers}: trace"
        );
    }
}

#[test]
fn sharded_trace_audits_and_carries_the_sharded_stamp() {
    let problem = small_coloring();
    let init = Assignment::total(vec![Value::new(0); 20]);
    let config = ShardConfig::with_base(faulty_base(5), 4);
    let run = AwcSolver::new(AwcConfig::resolvent())
        .solve_sharded(&problem, &init, &config)
        .expect("fits");
    assert!(run.trace.iter().any(|e| matches!(
        e,
        TraceEvent::RunEnd {
            runtime: RuntimeKind::Sharded,
            ..
        }
    )));
    // The audit recomputes every metric from the event stream; the
    // sharded runtime gets the *strict* checks (unlike Async).
    let audit = audit(&run.trace).expect("sealed trace");
    assert!(audit.passed(), "audit failures: {:?}", audit.failures);
    assert_eq!(audit.metrics, run.outcome.metrics);
}

#[test]
fn sharded_message_conservation_holds_under_faults() {
    // Satellite regression: the enqueued-copies identity must hold
    // exactly on the sharded runtime — shutdown loses no sends.
    let problem = small_coloring();
    let init = Assignment::total(vec![Value::new(0); 20]);
    let solver = AwcSolver::new(AwcConfig::resolvent());
    for seed in 0..5u64 {
        let config = ShardConfig::with_base(
            VirtualConfig {
                seed,
                link: faulty(),
                ..VirtualConfig::default()
            },
            3,
        );
        let run = solver
            .solve_sharded(&problem, &init, &config)
            .expect("fits");
        let m = &run.outcome.metrics;
        assert_eq!(m.termination, Termination::Solved, "seed {seed}");
        assert!(problem.is_solution(&run.outcome.solution.clone().expect("solved")));
        assert!(m.messages_dropped > 0, "seed {seed}: lottery never fired");
        assert_eq!(
            m.total_messages(),
            m.messages_sent - m.messages_dropped + m.messages_duplicated
                + m.messages_retransmitted,
            "seed {seed}: enqueued-copies identity"
        );
    }
}

#[test]
fn sharded_replays_a_recorded_fault_schedule() {
    // The fault log round-trip that powers the explore campaign: replay
    // a lottery run's recorded schedule through the sharded runtime and
    // get the identical run back, on a different worker count.
    let problem = small_coloring();
    let init = Assignment::total(vec![Value::new(0); 20]);
    let solver = AwcSolver::new(AwcConfig::resolvent());
    let first = solver
        .solve_sharded(&problem, &init, &ShardConfig::with_base(faulty_base(99), 2))
        .expect("fits");
    let replay_base = VirtualConfig {
        seed: 99,
        schedule: Some(first.fault_log.clone()),
        record_trace: true,
        ..VirtualConfig::default()
    };
    let replay = solver
        .solve_sharded(&problem, &init, &ShardConfig::with_base(replay_base, 7))
        .expect("fits");
    assert_eq!(replay.outcome, first.outcome);
    assert_eq!(replay.ticks, first.ticks);
    assert_eq!(
        strip_run_end(&replay.trace),
        strip_run_end(&first.trace)
    );
}

#[test]
fn sharded_reports_insoluble_without_losing_messages() {
    // An over-constrained instance: three mutually unequal booleans.
    let mut b = DistributedCsp::builder();
    let vars: Vec<_> = (0..3).map(|_| b.variable(Domain::new(2))).collect();
    for i in 0..3 {
        for j in (i + 1)..3 {
            b.not_equal(vars[i], vars[j]).expect("arity");
        }
    }
    let problem = b.build().expect("builds");
    let init = Assignment::total(vec![Value::new(0); 3]);
    let solver = AwcSolver::new(AwcConfig::resolvent());
    let mut outcomes = Vec::new();
    for workers in [1usize, 2, 3] {
        let config = ShardConfig::with_base(
            VirtualConfig {
                seed: 1,
                ..VirtualConfig::default()
            },
            workers,
        );
        let run = solver
            .solve_sharded(&problem, &init, &config)
            .expect("fits");
        assert_eq!(
            run.outcome.metrics.termination,
            Termination::Insoluble,
            "workers {workers}"
        );
        let m = &run.outcome.metrics;
        assert_eq!(
            m.total_messages(),
            m.messages_sent - m.messages_dropped + m.messages_duplicated
                + m.messages_retransmitted,
            "workers {workers}: conservation at early exit"
        );
        outcomes.push(run.outcome);
    }
    assert!(outcomes.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn sharded_fault_log_is_replayable_as_schedule_type() {
    // Type-level check that the fault log round-trips through the
    // public FaultSchedule API (what the explore campaign serializes).
    let problem = small_coloring();
    let init = Assignment::total(vec![Value::new(0); 20]);
    let run = AwcSolver::new(AwcConfig::resolvent())
        .solve_sharded(&problem, &init, &ShardConfig::with_base(faulty_base(3), 4))
        .expect("fits");
    let schedule: FaultSchedule = run.fault_log;
    assert!(!schedule.is_empty(), "faulty run must log faults");
}
