//! Integration: every algorithm solves every benchmark family, and the
//! returned solutions are genuine.

use discsp::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn families(n: u32) -> Vec<(&'static str, DistributedCsp)> {
    vec![
        (
            "d3c",
            coloring_to_discsp(&paper_coloring(n, 1)).expect("encode"),
        ),
        ("d3s", cnf_to_discsp(&paper_sat3(n, 1).cnf).expect("encode")),
        (
            "d3s1",
            cnf_to_discsp(&paper_one_sat3(n, 1).cnf).expect("encode"),
        ),
    ]
}

#[test]
fn awc_all_learning_modes_solve_all_families() {
    for (family, problem) in families(24) {
        let mut rng = StdRng::seed_from_u64(5);
        for trial in 0..2 {
            let init = random_assignment(&problem, &mut rng);
            // Size bounds follow the paper's per-family choices: 3 is
            // only strong enough for coloring (binary constraints);
            // SAT's ternary clauses need 4+ or the AWC can thrash.
            let bound = if family == "d3c" { 3 } else { 4 };
            for config in [
                AwcConfig::resolvent(),
                AwcConfig::mcs(),
                AwcConfig::kth_resolvent(bound),
                AwcConfig::kth_resolvent(5),
            ] {
                let run = AwcSolver::new(config)
                    .solve_sync(&problem, &init)
                    .expect("benchmark problems fit the AWC");
                assert_eq!(
                    run.outcome.metrics.termination,
                    Termination::Solved,
                    "{family} trial {trial} with {}",
                    config.label()
                );
                let solution = run.outcome.solution.expect("solved");
                assert!(
                    problem.is_solution(&solution),
                    "{family}: reported solution violates constraints"
                );
            }
        }
    }
}

#[test]
fn db_solves_coloring_and_plain_sat() {
    // DB is incomplete and slow on the unique-solution family, so only
    // the first two families are required to finish quickly here.
    for (family, problem) in families(24).into_iter().take(2) {
        let mut rng = StdRng::seed_from_u64(6);
        let init = random_assignment(&problem, &mut rng);
        let run = DbaSolver::new()
            .solve_sync(&problem, &init)
            .expect("one variable per agent");
        assert!(
            run.outcome.metrics.termination.is_solved(),
            "{family} unsolved by DB"
        );
        assert!(problem.is_solution(&run.outcome.solution.expect("solved")));
    }
}

#[test]
fn abt_solves_all_families() {
    for (family, problem) in families(18) {
        let mut rng = StdRng::seed_from_u64(7);
        let init = random_assignment(&problem, &mut rng);
        let run = AbtSolver::new()
            .solve_sync(&problem, &init)
            .expect("one variable per agent");
        assert!(
            run.outcome.metrics.termination.is_solved(),
            "{family} unsolved by ABT"
        );
        assert!(problem.is_solution(&run.outcome.solution.expect("solved")));
    }
}

#[test]
fn distributed_solvers_agree_with_centralized_on_unique_instances() {
    let instance = paper_one_sat3(26, 9);
    let problem = cnf_to_discsp(&instance.cnf).expect("encode");
    let planted = model_to_assignment(&instance.planted);

    let central = Backtracker::new(&problem).solve();
    assert_eq!(central.solution(), Some(&planted));

    let init = Assignment::total(vec![Value::FALSE; 26]);
    let awc = AwcSolver::new(AwcConfig::resolvent())
        .solve_sync(&problem, &init)
        .expect("fits");
    assert_eq!(awc.outcome.solution.as_ref(), Some(&planted));

    let db = DbaSolver::new().solve_sync(&problem, &init).expect("fits");
    assert_eq!(db.outcome.solution.as_ref(), Some(&planted));
}

#[test]
fn metrics_invariants_hold_across_algorithms() {
    let problem = coloring_to_discsp(&paper_coloring(20, 3)).expect("encode");
    let init = Assignment::total(vec![Value::new(0); 20]);
    let runs = vec![
        AwcSolver::new(AwcConfig::resolvent())
            .solve_sync(&problem, &init)
            .unwrap()
            .outcome
            .metrics,
        AwcSolver::new(AwcConfig::no_learning())
            .solve_sync(&problem, &init)
            .unwrap()
            .outcome
            .metrics,
        DbaSolver::new()
            .solve_sync(&problem, &init)
            .unwrap()
            .outcome
            .metrics,
        AbtSolver::new()
            .solve_sync(&problem, &init)
            .unwrap()
            .outcome
            .metrics,
    ];
    for m in runs {
        assert!(m.cycles >= 1);
        // maxcck sums per-cycle maxima, which can never exceed the sum
        // of per-cycle totals.
        assert!(m.maxcck <= m.total_checks);
        // With 20 agents, a per-cycle maximum is at least 1/20 of the
        // per-cycle total.
        assert!(m.maxcck * 20 >= m.total_checks);
        assert!(m.termination.is_solved());
        assert!(m.redundant_nogoods <= m.nogoods_generated);
    }
}

#[test]
fn min_conflicts_validates_family_hardness_contrast() {
    // The plain planted family must be solvable by local search; the
    // unique-solution family must defeat the same budget (the Richards &
    // Richards phenomenon the paper leans on).
    let easy = cnf_to_discsp(&paper_sat3(40, 5).cnf).expect("encode");
    let outcome = MinConflicts::new(3).max_steps(60_000).run(&easy);
    assert!(
        outcome.solution.is_some(),
        "plain 3SAT should fall to local search"
    );

    let hard = cnf_to_discsp(&paper_one_sat3(40, 5).cnf).expect("encode");
    let outcome = MinConflicts::new(3).max_steps(60_000).run(&hard);
    assert!(
        outcome.solution.is_none(),
        "unique-solution 3SAT should resist this local-search budget"
    );
}
