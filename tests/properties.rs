//! Property-based tests over the core data structures, the generators,
//! and the solvers.

use discsp::core::{Nogood, Rank, VarValue};
use discsp::prelude::*;
use proptest::prelude::*;

/// Arbitrary (variable, value) pairs over a small universe, one value
/// per variable (nogood-compatible).
fn arb_elements() -> impl Strategy<Value = Vec<VarValue>> {
    proptest::collection::btree_map(0u32..12, 0u16..4, 0..8).prop_map(|m| {
        m.into_iter()
            .map(|(var, value)| VarValue::new(VariableId::new(var), Value::new(value)))
            .collect()
    })
}

proptest! {
    #[test]
    fn nogood_construction_is_order_independent(elems in arb_elements()) {
        let forward = Nogood::new(elems.clone());
        let mut reversed = elems.clone();
        reversed.reverse();
        let backward = Nogood::new(reversed);
        prop_assert_eq!(&forward, &backward);
        // Canonical order is sorted by variable.
        let vars: Vec<_> = forward.vars().collect();
        let mut sorted = vars.clone();
        sorted.sort();
        prop_assert_eq!(vars, sorted);
    }

    #[test]
    fn nogood_violation_matches_brute_force(elems in arb_elements(), assigned in proptest::collection::vec((0u32..12, 0u16..4), 0..12)) {
        let ng = Nogood::new(elems);
        let mut assignment = Assignment::empty(12);
        for (var, value) in assigned {
            assignment.set(VariableId::new(var), Value::new(value));
        }
        let expected = ng
            .elems()
            .iter()
            .all(|e| assignment.get(e.var) == Some(e.value));
        prop_assert_eq!(ng.is_violated_by(assignment.lookup()), expected);
    }

    #[test]
    fn without_var_never_contains_the_var(elems in arb_elements(), var in 0u32..12) {
        let ng = Nogood::new(elems);
        let stripped = ng.without_var(VariableId::new(var));
        prop_assert!(!stripped.contains_var(VariableId::new(var)));
        prop_assert!(stripped.is_subset_of(&ng));
    }

    #[test]
    fn incremental_eval_matches_naive_scan(
        own in 0u32..12,
        nogood_elems in proptest::collection::vec(arb_elements(), 1..10),
        views in proptest::collection::vec(
            proptest::collection::btree_map(0u32..12, 0u16..4, 0..8),
            1..6,
        ),
    ) {
        use discsp::core::{IncrementalEval, NogoodStore};
        let own = VariableId::new(own);
        let nogoods: Vec<Nogood> = nogood_elems.into_iter().map(Nogood::new).collect();
        let mut store = NogoodStore::new();
        let mut eval = IncrementalEval::new(own);
        let steps = views.len();
        for (step, view) in views.into_iter().enumerate() {
            // Grow the store progressively so append-sync is exercised
            // alongside view changes.
            let grown = ((step + 1) * nogoods.len()).div_ceil(steps);
            for ng in &nogoods[..grown] {
                store.insert(ng.clone());
            }
            let foreign: Vec<(VariableId, Value)> = view
                .iter()
                .map(|(&var, &value)| (VariableId::new(var), Value::new(value)))
                .filter(|&(var, _)| var != own)
                .collect();
            eval.refresh(&store, foreign.iter().copied());
            for own_value in 0u16..4 {
                let own_value = Value::new(own_value);
                let lookup = |var: VariableId| {
                    if var == own {
                        Some(own_value)
                    } else {
                        foreign.iter().find(|&&(v, _)| v == var).map(|&(_, value)| value)
                    }
                };
                let naive: Vec<usize> = (0..store.len())
                    .filter(|&i| store.get(i).expect("in range").is_violated_by(lookup))
                    .collect();
                prop_assert_eq!(eval.violated_with(own_value), naive.clone());
                prop_assert_eq!(eval.violation_count_with(own_value), naive.len());
                for i in 0..store.len() {
                    prop_assert!(
                        eval.is_violated(i, own_value) == naive.contains(&i),
                        "nogood {} disagrees under own={}", i, own_value
                    );
                }
            }
        }
        // The cached path itself must never meter checks.
        prop_assert_eq!(store.checks(), 0);
    }

    #[test]
    fn rank_order_is_total_and_antisymmetric(
        a in (0u32..20, 0u64..5),
        b in (0u32..20, 0u64..5),
    ) {
        let ra = Rank::new(VariableId::new(a.0), Priority::new(a.1));
        let rb = Rank::new(VariableId::new(b.0), Priority::new(b.1));
        if ra == rb {
            prop_assert!(!ra.outranks(rb) && !rb.outranks(ra));
        } else {
            prop_assert!(ra.outranks(rb) ^ rb.outranks(ra));
        }
    }

    #[test]
    fn coloring_generator_invariants(n in 6u32..30, seed in 0u64..500) {
        let m = (2.0 * n as f64) as usize;
        let inst = generate_coloring(n, m, 3, seed);
        prop_assert_eq!(inst.graph.num_edges(), m);
        for (u, w) in inst.graph.edges() {
            prop_assert_ne!(inst.planted[u as usize], inst.planted[w as usize]);
        }
        // The encoded problem accepts the planted coloring.
        let problem = coloring_to_discsp(&inst).expect("encode");
        prop_assert!(problem.is_solution(&inst.planted_assignment()));
    }

    #[test]
    fn sat_generator_invariants(n in 5u32..30, seed in 0u64..500) {
        let m = (3.0 * n as f64) as usize;
        let inst = generate_sat3(n, m, seed);
        prop_assert_eq!(inst.cnf.num_clauses(), m);
        prop_assert!(inst.cnf.eval(&inst.planted));
        for clause in inst.cnf.clauses() {
            prop_assert_eq!(clause.len(), 3);
        }
    }

    #[test]
    fn one_sat_generator_is_truly_unique(n in 5u32..11, seed in 0u64..40) {
        let m = n as usize + 6;
        let inst = generate_one_sat3(n, m, seed);
        prop_assert!(inst.cnf.eval(&inst.planted));
        let problem = cnf_to_discsp(&inst.cnf).expect("encode");
        let models = Backtracker::new(&problem).enumerate(2);
        prop_assert_eq!(models.len(), 1);
        prop_assert_eq!(&models[0], &model_to_assignment(&inst.planted));
    }

    #[test]
    fn dimacs_roundtrip(n in 4u32..20, seed in 0u64..200) {
        let inst = generate_sat3(n, 2 * n as usize, seed);
        let mut buffer = Vec::new();
        write_dimacs(&inst.cnf, &mut buffer).expect("write");
        let parsed = read_dimacs(buffer.as_slice()).expect("parse");
        prop_assert_eq!(parsed.clauses(), inst.cnf.clauses());
        prop_assert_eq!(parsed.num_vars(), inst.cnf.num_vars());
    }
}

proptest! {
    // Solver properties are costlier: fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn awc_solves_random_solvable_colorings(n in 9u32..18, seed in 0u64..100) {
        let m = (2.0 * n as f64) as usize;
        let inst = generate_coloring(n, m, 3, seed);
        let problem = coloring_to_discsp(&inst).expect("encode");
        let init = Assignment::total(vec![Value::new(0); n as usize]);
        let run = AwcSolver::new(AwcConfig::resolvent())
            .cycle_limit(5_000)
            .solve_sync(&problem, &init)
            .expect("fits");
        prop_assert_eq!(run.outcome.metrics.termination, Termination::Solved);
        prop_assert!(problem.is_solution(&run.outcome.solution.expect("solved")));
    }

    #[test]
    fn awc_and_backtracker_agree_on_satisfiability(n in 4u32..10, m in 8usize..26, seed in 0u64..60) {
        // Fully random (possibly unsatisfiable) 3SAT: if the complete
        // backtracker proves UNSAT, AWC+Rslv must not "solve" it; if
        // SAT, AWC must find some valid solution.
        use discsp::cspsolve::SolveResult;
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = DistributedCsp::builder();
        let vars: Vec<_> = (0..n).map(|_| b.variable(Domain::BOOL)).collect();
        for _ in 0..m {
            let mut picked: Vec<u32> = (0..n).collect();
            // Cheap partial shuffle for three distinct variables.
            for i in 0..3 {
                let j = rng.gen_range(i..picked.len());
                picked.swap(i, j);
            }
            let literals: Vec<(VariableId, bool)> = picked[..3]
                .iter()
                .map(|&v| (vars[v as usize], rng.gen::<bool>()))
                .collect();
            b.clause(&literals).expect("distinct vars");
        }
        let problem = b.build().expect("nonempty");
        let central = Backtracker::new(&problem).solve();
        let init = Assignment::total(vec![Value::FALSE; n as usize]);
        let run = AwcSolver::new(AwcConfig::resolvent())
            .cycle_limit(5_000)
            .solve_sync(&problem, &init)
            .expect("fits");
        match central {
            SolveResult::Solution(_) => {
                // Satisfiable: the AWC must find a genuine solution and
                // must never fabricate an insolubility proof (learned
                // nogoods are implied, so the empty nogood is underivable).
                prop_assert_eq!(run.outcome.metrics.termination, Termination::Solved);
                prop_assert!(problem.is_solution(&run.outcome.solution.expect("solved")));
            }
            SolveResult::Unsatisfiable => {
                // Unsatisfiable: the AWC must never claim a solution.
                // It *usually* derives the empty nogood, but termination
                // within a fixed cycle budget is not guaranteed — the
                // "same as previously generated" guard only suppresses
                // consecutive repeats, so agents can alternate between
                // already-known nogoods (e.g. n = 4, m = 22, seed = 30
                // livelocks). Cutoff is therefore an acceptable outcome.
                prop_assert!(matches!(
                    run.outcome.metrics.termination,
                    Termination::Insoluble | Termination::CutOff
                ));
                prop_assert!(run.outcome.solution.is_none());
            }
            SolveResult::LimitReached => unreachable!("tiny instances never hit the limit"),
        }
    }
}
