//! Golden trace-audit tests for the unified trace pipeline.
//!
//! Every runtime records the same event schema; the `discsp-trace`
//! analyzer replays a trace and *independently* recomputes the paper's
//! metrics (`cycle`, `maxcck`, `total_checks`) plus the message
//! accounting, then compares them against the `RunMetrics` the runtime
//! itself reported. These tests pin that agreement on seeded AWC and
//! DBA runs across all four runtimes (including lossy link policies),
//! check the JSONL format roundtrips losslessly, and prove the audit
//! actually catches corruption by deleting a single `Delivered` event.

use discsp::prelude::*;
use discsp_runtime::AsyncConfig;
use discsp_trace::{audit, event_to_json, parse_trace, summarize, TraceEvent};

fn ring(n: usize) -> DistributedCsp {
    let mut b = DistributedCsp::builder();
    let vars: Vec<_> = (0..n).map(|_| b.variable(Domain::new(3))).collect();
    for i in 0..n {
        let x = vars[i];
        let y = vars[(i + 1) % n];
        if x != y {
            b.not_equal(x, y).expect("ring edge");
        }
    }
    b.build().expect("ring problem")
}

fn all_zero(n: usize) -> Assignment {
    Assignment::total((0..n).map(|_| Value::new(0)))
}

fn lossy_policy() -> LinkPolicy {
    LinkPolicy::lossy(250_000)
        .with_duplication(80_000)
        .with_delay(0, 2)
        .with_reordering(2)
}

/// Audits `trace` and asserts the recomputation matches `reported`
/// field for field (the audit's failure list is empty exactly when
/// every recomputed counter equals its reported counterpart).
fn assert_audit_exact(trace: &[TraceEvent], reported: &discsp_core::RunMetrics, label: &str) {
    let audit = audit(trace).unwrap_or_else(|e| panic!("{label}: audit refused the trace: {e}"));
    assert!(
        audit.passed(),
        "{label}: audit found discrepancies: {:#?}",
        audit.failures
    );
    assert_eq!(
        &audit.metrics, reported,
        "{label}: RunEnd metrics differ from the report's"
    );
}

#[test]
fn sync_awc_and_dba_traces_audit_exactly() {
    let n = 6;
    let problem = ring(n);
    let init = all_zero(n);

    let awc = AwcSolver::new(AwcConfig::resolvent())
        .record_trace(true)
        .message_delay(3, 7)
        .solve_sync(&problem, &init)
        .expect("awc sync run");
    assert_audit_exact(&awc.trace, &awc.outcome.metrics, "sync awc");

    let dba = DbaSolver::new()
        .record_trace(true)
        .solve_sync(&problem, &init)
        .expect("dba sync run");
    assert_audit_exact(&dba.trace, &dba.outcome.metrics, "sync dba");

    // The ride-along emitters fire on every runtime: value changes
    // appear in the trace, not just steps.
    assert!(awc
        .trace
        .iter()
        .any(|e| matches!(e, TraceEvent::ValueChanged { .. })));

    // A run that actually deadends (K4 is not 3-colorable) must also
    // show its learned nogoods, one event per generation.
    let mut b = DistributedCsp::builder();
    let vars: Vec<_> = (0..4).map(|_| b.variable(Domain::new(3))).collect();
    for i in 0..4 {
        for j in (i + 1)..4 {
            b.not_equal(vars[i], vars[j]).expect("k4 edge");
        }
    }
    let k4 = b.build().expect("k4 problem");
    let run = AwcSolver::new(AwcConfig::resolvent())
        .record_trace(true)
        .cycle_limit(5_000)
        .solve_sync(&k4, &all_zero(4))
        .expect("awc k4 run");
    assert_audit_exact(&run.trace, &run.outcome.metrics, "sync awc k4");
    let learned = run
        .trace
        .iter()
        .filter(|e| matches!(e, TraceEvent::NogoodLearned { .. }))
        .count() as u64;
    assert_eq!(
        learned, run.outcome.metrics.nogoods_generated,
        "one NogoodLearned event per generated nogood"
    );
    assert!(learned > 0, "K4 must force nogood generation");
}

#[test]
fn virtual_lossy_sweep_audits_exactly_for_both_algorithms() {
    let n = 5;
    let problem = ring(n);
    let init = all_zero(n);
    let awc = AwcSolver::new(AwcConfig::resolvent());
    let dba = DbaSolver::new();

    // 13 seeds x 2 algorithms = 26 lossy trials, every one audited.
    for seed in 0..13 {
        let config = VirtualConfig {
            seed,
            link: lossy_policy(),
            record_trace: true,
            ..VirtualConfig::default()
        };
        let run = awc
            .solve_virtual(&problem, &init, &config)
            .expect("awc virtual run");
        assert_audit_exact(
            &run.trace,
            &run.outcome.metrics,
            &format!("virtual awc seed {seed}"),
        );
        let run = dba
            .solve_virtual(&problem, &init, &config)
            .expect("dba virtual run");
        assert_audit_exact(
            &run.trace,
            &run.outcome.metrics,
            &format!("virtual dba seed {seed}"),
        );
    }
}

#[test]
fn async_lossy_trace_is_auditable() {
    let n = 5;
    let problem = ring(n);
    let init = all_zero(n);
    let config = AsyncConfig {
        seed: 9,
        link: LinkPolicy::lossy(300_000).with_delay(0, 2),
        record_trace: true,
        max_wall_time: std::time::Duration::from_secs(60),
        ..AsyncConfig::default()
    };
    let report = AwcSolver::new(AwcConfig::resolvent())
        .solve_async(&problem, &init, &config)
        .expect("async lossy run");
    assert!(!report.trace.is_empty(), "async run must surface its trace");
    assert_audit_exact(&report.trace, &report.outcome.metrics, "async awc");
}

#[test]
fn net_threads_trace_audits_exactly() {
    let n = 4;
    let problem = ring(n);
    let init = all_zero(n);
    let config = NetConfig {
        seed: 5,
        record_trace: true,
        ..NetConfig::default()
    };
    let report = AwcSolver::new(AwcConfig::resolvent())
        .solve_net(&problem, &init, &config, &AgentLaunch::Threads)
        .expect("networked run");
    assert!(!report.trace.is_empty(), "net run must ship its trace home");
    assert_audit_exact(&report.trace, &report.outcome.metrics, "net awc");
}

#[test]
fn jsonl_roundtrip_preserves_the_trace_and_its_audit() {
    let n = 5;
    let problem = ring(n);
    let init = all_zero(n);
    let run = AwcSolver::new(AwcConfig::resolvent())
        .solve_virtual(
            &problem,
            &init,
            &VirtualConfig {
                seed: 3,
                link: lossy_policy(),
                record_trace: true,
                ..VirtualConfig::default()
            },
        )
        .expect("virtual run");

    let text: String = run
        .trace
        .iter()
        .map(|e| event_to_json(e) + "\n")
        .collect();
    let parsed = parse_trace(&text).expect("every emitted line parses back");
    assert_eq!(parsed, run.trace, "JSONL roundtrip must be lossless");
    assert_audit_exact(&parsed, &run.outcome.metrics, "parsed jsonl");

    // The human summary renders without panicking and names the runtime.
    let summary = summarize(&parsed);
    assert!(summary.contains("virtual"), "summary names the runtime: {summary}");
}

#[test]
fn dropping_one_delivered_event_fails_the_audit_with_a_pointed_diagnostic() {
    let n = 5;
    let problem = ring(n);
    let init = all_zero(n);
    let run = AwcSolver::new(AwcConfig::resolvent())
        .solve_virtual(
            &problem,
            &init,
            &VirtualConfig {
                seed: 4,
                link: lossy_policy(),
                record_trace: true,
                ..VirtualConfig::default()
            },
        )
        .expect("virtual run");
    assert_audit_exact(&run.trace, &run.outcome.metrics, "uncorrupted");

    let victim = run
        .trace
        .iter()
        .position(|e| matches!(e, TraceEvent::Delivered { .. }))
        .expect("a lossy run still delivers something");
    let mut corrupted = run.trace.clone();
    corrupted.remove(victim);

    let verdict = audit(&corrupted).expect("corrupted trace still audits");
    assert!(
        !verdict.passed(),
        "the audit must notice one missing Delivered event"
    );
    assert!(
        verdict
            .failures
            .iter()
            .any(|f| f.contains("Delivered event is missing")),
        "diagnostic must point at the missing delivery: {:#?}",
        verdict.failures
    );
}
