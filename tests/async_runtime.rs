//! Integration: the asynchronous runtime solves the same problems as the
//! synchronous simulator, under varied interleavings.

use std::time::Duration;

use discsp::prelude::*;

fn small_coloring() -> DistributedCsp {
    coloring_to_discsp(&paper_coloring(20, 13)).expect("encode")
}

#[test]
fn awc_async_solves_coloring_under_jitter() {
    let problem = small_coloring();
    let init = Assignment::total(vec![Value::new(0); 20]);
    let solver = AwcSolver::new(AwcConfig::resolvent());
    for seed in 0..3u64 {
        let config = AsyncConfig {
            max_wall_time: Duration::from_secs(120),
            jitter_micros: 300,
            seed,
            ..AsyncConfig::default()
        };
        let report = solver.solve_async(&problem, &init, &config).expect("fits");
        assert_eq!(
            report.outcome.metrics.termination,
            Termination::Solved,
            "seed {seed}"
        );
        let solution = report.outcome.solution.expect("solved");
        assert!(problem.is_solution(&solution));
        assert!(report.activations >= 20, "every agent must have started");
    }
}

#[test]
fn awc_async_solves_unique_sat() {
    let instance = paper_one_sat3(12, 4);
    let problem = cnf_to_discsp(&instance.cnf).expect("encode");
    let init = Assignment::total(vec![Value::FALSE; 12]);
    // Generous wall limit (one shared core under `cargo test`), and the
    // *unrestricted* resolvent configuration: size-bounded recording is
    // incomplete, so under adversarial asynchronous interleavings it can
    // legitimately fail to terminate — not a property to assert against.
    let config = AsyncConfig {
        max_wall_time: Duration::from_secs(120),
        ..AsyncConfig::default()
    };
    let report = AwcSolver::new(AwcConfig::resolvent())
        .solve_async(&problem, &init, &config)
        .expect("fits");
    assert_eq!(report.outcome.metrics.termination, Termination::Solved);
    assert_eq!(
        report.outcome.solution,
        Some(model_to_assignment(&instance.planted))
    );
}

#[test]
fn db_async_solves_coloring() {
    let problem = small_coloring();
    let init = Assignment::total(vec![Value::new(0); 20]);
    let config = AsyncConfig {
        max_wall_time: Duration::from_secs(120),
        ..AsyncConfig::default()
    };
    let report = DbaSolver::new()
        .solve_async(&problem, &init, &config)
        .expect("fits");
    assert_eq!(report.outcome.metrics.termination, Termination::Solved);
    assert!(problem.is_solution(&report.outcome.solution.expect("solved")));
}

#[test]
fn async_message_counts_are_plausible() {
    let problem = small_coloring();
    let init = Assignment::total(vec![Value::new(0); 20]);
    let config = AsyncConfig {
        max_wall_time: Duration::from_secs(120),
        ..AsyncConfig::default()
    };
    let report = AwcSolver::new(AwcConfig::resolvent())
        .solve_async(&problem, &init, &config)
        .expect("fits");
    let m = &report.outcome.metrics;
    // Every agent announces to each neighbor at start; the coloring
    // instance has 54 arcs → at least 108 initial ok? messages.
    assert!(m.ok_messages >= 108, "ok messages {}", m.ok_messages);
    assert!(m.total_checks > 0);
}
