//! Integration: the asynchronous runtime solves the same problems as the
//! synchronous simulator, under varied interleavings.

use std::time::Duration;

use discsp::prelude::*;

fn small_coloring() -> DistributedCsp {
    coloring_to_discsp(&paper_coloring(20, 13)).expect("encode")
}

#[test]
fn awc_async_solves_coloring_under_jitter() {
    let problem = small_coloring();
    let init = Assignment::total(vec![Value::new(0); 20]);
    let solver = AwcSolver::new(AwcConfig::resolvent());
    for seed in 0..3u64 {
        let config = AsyncConfig {
            max_wall_time: Duration::from_secs(120),
            jitter_micros: 300,
            seed,
            ..AsyncConfig::default()
        };
        let report = solver.solve_async(&problem, &init, &config).expect("fits");
        assert_eq!(
            report.outcome.metrics.termination,
            Termination::Solved,
            "seed {seed}"
        );
        let solution = report.outcome.solution.expect("solved");
        assert!(problem.is_solution(&solution));
        assert!(report.activations >= 20, "every agent must have started");
    }
}

#[test]
fn awc_async_solves_unique_sat() {
    let instance = paper_one_sat3(12, 4);
    let problem = cnf_to_discsp(&instance.cnf).expect("encode");
    let init = Assignment::total(vec![Value::FALSE; 12]);
    // Generous wall limit (one shared core under `cargo test`), and the
    // *unrestricted* resolvent configuration: size-bounded recording is
    // incomplete, so under adversarial asynchronous interleavings it can
    // legitimately fail to terminate — not a property to assert against.
    let config = AsyncConfig {
        max_wall_time: Duration::from_secs(120),
        ..AsyncConfig::default()
    };
    let report = AwcSolver::new(AwcConfig::resolvent())
        .solve_async(&problem, &init, &config)
        .expect("fits");
    assert_eq!(report.outcome.metrics.termination, Termination::Solved);
    assert_eq!(
        report.outcome.solution,
        Some(model_to_assignment(&instance.planted))
    );
}

#[test]
fn db_async_solves_coloring() {
    let problem = small_coloring();
    let init = Assignment::total(vec![Value::new(0); 20]);
    let config = AsyncConfig {
        max_wall_time: Duration::from_secs(120),
        ..AsyncConfig::default()
    };
    let report = DbaSolver::new()
        .solve_async(&problem, &init, &config)
        .expect("fits");
    assert_eq!(report.outcome.metrics.termination, Termination::Solved);
    assert!(problem.is_solution(&report.outcome.solution.expect("solved")));
}

#[test]
fn async_message_counts_are_plausible() {
    let problem = small_coloring();
    let init = Assignment::total(vec![Value::new(0); 20]);
    let config = AsyncConfig {
        max_wall_time: Duration::from_secs(120),
        ..AsyncConfig::default()
    };
    let report = AwcSolver::new(AwcConfig::resolvent())
        .solve_async(&problem, &init, &config)
        .expect("fits");
    let m = &report.outcome.metrics;
    // Every agent announces to each neighbor at start; the coloring
    // instance has 54 arcs → at least 108 initial ok? messages.
    assert!(m.ok_messages >= 108, "ok messages {}", m.ok_messages);
    assert!(m.total_checks > 0);
}

/// The fault policy exercised by the deterministic sweep: 10% drops, 2%
/// duplicates, delivery delayed up to 2 ticks, 2-tick reordering window.
fn faulty() -> LinkPolicy {
    LinkPolicy::lossy(100_000)
        .with_duplication(20_000)
        .with_delay(0, 2)
        .with_reordering(2)
}

#[test]
fn awc_virtual_solves_coloring_over_faulty_links_across_seeds() {
    let problem = small_coloring();
    let init = Assignment::total(vec![Value::new(0); 20]);
    let solver = AwcSolver::new(AwcConfig::resolvent());
    for seed in 0..5u64 {
        let config = VirtualConfig {
            seed,
            link: faulty(),
            ..VirtualConfig::default()
        };
        let report = solver.solve_virtual(&problem, &init, &config).expect("fits");
        let m = &report.outcome.metrics;
        assert_eq!(m.termination, Termination::Solved, "seed {seed}");
        assert!(problem.is_solution(&report.outcome.solution.clone().expect("solved")));
        assert!(m.messages_dropped > 0, "seed {seed}: lottery never fired");
        assert_eq!(
            m.total_messages(),
            m.messages_sent - m.messages_dropped + m.messages_duplicated
                + m.messages_retransmitted,
            "seed {seed}: enqueued-copies identity"
        );
    }
}

#[test]
fn db_virtual_solves_coloring_over_faulty_links_across_seeds() {
    let problem = small_coloring();
    let init = Assignment::total(vec![Value::new(0); 20]);
    let solver = DbaSolver::new();
    for seed in 0..5u64 {
        let config = VirtualConfig {
            seed,
            link: faulty(),
            ..VirtualConfig::default()
        };
        let report = solver.solve_virtual(&problem, &init, &config).expect("fits");
        assert_eq!(
            report.outcome.metrics.termination,
            Termination::Solved,
            "seed {seed}"
        );
        assert!(problem.is_solution(&report.outcome.solution.expect("solved")));
    }
}

#[test]
fn virtual_faulty_runs_replay_bit_identically() {
    // The acceptance criterion for the whole fault layer: a fixed
    // (seed, policy) pair fully determines the run — counters,
    // termination, solution, tick count, everything.
    let problem = small_coloring();
    let init = Assignment::total(vec![Value::new(0); 20]);
    let solver = AwcSolver::new(AwcConfig::resolvent());
    let config = VirtualConfig {
        seed: 424_242,
        link: faulty(),
        ..VirtualConfig::default()
    };
    let a = solver.solve_virtual(&problem, &init, &config).expect("fits");
    let b = solver.solve_virtual(&problem, &init, &config).expect("fits");
    assert_eq!(a.outcome, b.outcome);
    assert_eq!(a.ticks, b.ticks);
    assert_eq!(a.activations, b.activations);
    assert_eq!(a.nudges, b.nudges);
}

#[test]
fn awc_async_solves_coloring_over_faulty_links() {
    // Robustness of the *threaded* runtime under the same policy: the
    // interleaving is not reproducible, but the outcome and the counter
    // inequalities must hold on every run.
    let problem = small_coloring();
    let init = Assignment::total(vec![Value::new(0); 20]);
    let config = AsyncConfig {
        max_wall_time: Duration::from_secs(120),
        seed: 7,
        link: faulty(),
        ..AsyncConfig::default()
    };
    let report = AwcSolver::new(AwcConfig::resolvent())
        .solve_async(&problem, &init, &config)
        .expect("fits");
    let m = &report.outcome.metrics;
    assert_eq!(m.termination, Termination::Solved);
    assert!(problem.is_solution(&report.outcome.solution.clone().expect("solved")));
    // Sends racing shutdown are discarded uncounted, hence ≤ rather
    // than the deterministic runtime's equality.
    assert!(
        m.total_messages()
            <= m.messages_sent - m.messages_dropped + m.messages_duplicated
                + m.messages_retransmitted,
        "class counters may only undercount enqueued copies"
    );
}
