//! Replays every fixture under `tests/explore_repros/` and runs the
//! planted-bug end-to-end check of the explorer pipeline.
//!
//! A fixture is a minimized fault schedule from a `discsp-explore`
//! campaign finding, committed with a root-cause comment. Fixtures must
//! parse, rebuild their subject from a few integers, and replay
//! bit-identically — the virtual executor guarantees a scripted run is
//! a pure function of `(subject, config)`.

use std::fs;
use std::path::PathBuf;

use discsp_core::Termination;
use discsp_explore::{
    minimize_finding, reproduces, violations, Algo, Repro, Sabotage, Subject, Violation,
};
use discsp_runtime::{LinkPolicy, VirtualConfig};

fn fixtures() -> Vec<(PathBuf, Repro)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/explore_repros");
    let mut out = Vec::new();
    for entry in fs::read_dir(&dir).expect("fixture directory exists") {
        let path = entry.expect("readable directory entry").path();
        if path.extension().is_none_or(|e| e != "repro") {
            continue;
        }
        let text = fs::read_to_string(&path).expect("readable fixture");
        let repro =
            Repro::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        out.push((path, repro));
    }
    assert!(!out.is_empty(), "no fixtures under {}", dir.display());
    out
}

#[test]
fn every_fixture_replays_bit_identically() {
    for (path, repro) in fixtures() {
        let (first, v1) = repro
            .replay()
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let (second, v2) = repro.replay().unwrap();
        assert_eq!(first.outcome, second.outcome, "{}", path.display());
        assert_eq!(first.trace, second.trace, "{}", path.display());
        assert_eq!(first.fault_log, second.fault_log, "{}", path.display());
        assert_eq!(v1, v2, "{}", path.display());
    }
}

#[test]
fn awc_k4_fixture_burns_the_nudge_budget_without_tripping_the_oracle() {
    // The first campaign flagged AWC-on-K4 nudge exhaustion as
    // non-quiescence; the root cause was the oracle (see the fixture's
    // header comment). The minimized schedule must still exhaust the
    // budget — keeping the fixture an honest witness — while the fixed
    // oracle stays quiet.
    let (path, repro) = fixtures()
        .into_iter()
        .find(|(p, _)| p.ends_with("awc_k4_nudge_exhaustion.repro"))
        .expect("fixture is committed");
    assert_eq!(repro.algo, Algo::Awc);
    assert_eq!(repro.violation, "non-quiescence");
    let (report, found) = repro.replay().unwrap();
    assert_eq!(
        report.outcome.metrics.termination,
        Termination::CutOff,
        "{}",
        path.display()
    );
    assert!(
        report.nudges >= repro.max_nudges,
        "the schedule must still burn the whole nudge budget ({} < {})",
        report.nudges,
        repro.max_nudges
    );
    assert_eq!(found, vec![], "the fixed oracle must not fire");
}

#[test]
fn planted_accounting_bug_is_flagged_and_minimizes_to_few_events() {
    // End-to-end validation of the explorer pipeline: a deliberate
    // accounting error (the test-only `Sabotage` hook drops one
    // `messages_duplicated` increment) must be caught by the oracles on
    // a lottery run, and delta-debugging its fault log must converge to
    // a schedule of at most 3 events that still reproduces the
    // violation deterministically.
    let subject = Subject::coloring(Algo::AwcRslv, 10, 3)
        .unwrap()
        .with_sabotage(Sabotage::UnderreportDuplicates);
    let config = VirtualConfig {
        seed: 5,
        link: LinkPolicy::perfect().with_duplication(300_000).with_delay(0, 2),
        record_trace: true,
        ..VirtualConfig::default()
    };
    let report = subject.run(&config).unwrap();
    let found = violations(&subject, &config, &report);
    assert!(
        found.contains(&Violation::ConservationBroken),
        "the campaign oracles must flag the planted bug: {found:?}"
    );

    let minimized = minimize_finding(&subject, &config, &report.fault_log, "conservation")
        .expect("the fault log carries the violation");
    assert!(
        minimized.schedule.len() <= 3,
        "minimized to {} events (log had {})",
        minimized.schedule.len(),
        report.fault_log.len()
    );
    assert!(!minimized.schedule.is_empty());
    // Deterministic reproduction: the minimized script must show the
    // violation on every replay, not just once.
    for _ in 0..2 {
        assert!(reproduces(&subject, &config, &minimized.schedule, "conservation"));
    }
}
