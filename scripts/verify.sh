#!/usr/bin/env bash
# Full offline verification: release build, complete test suite, lints.
#
# Everything runs --offline — external dependencies are vendored as
# stubs under vendor/ (see Cargo.toml), so no network is required.
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline (workspace)"
cargo test -q --offline --workspace

echo "==> cargo clippy -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> discsp-lint (workspace invariants: determinism, metrics, panic safety, schema sync)"
cargo run --release --offline -q -p discsp-lint -- --timing --max-millis 1000

echo "==> fault-injection soak (seed sweep over lossy/delayed/reordering links)"
soak_traces="target/fault-soak-traces"
rm -rf "$soak_traces"
TRACE_DIR="$soak_traces" \
  cargo run --release --offline -q --example lossy_links -- "${FAULT_SWEEP_SEEDS:-10}"

echo "==> discsp-trace audit (independently recompute metrics from every soak trace)"
cargo run --release --offline -q -p discsp-trace -- audit "$soak_traces"/*.jsonl

echo "==> explore smoke (fault-schedule campaign, fixed seed, all algorithms)"
cargo run --release --offline -q -p discsp-explore -- --algo all --trials 200 --seed 1

echo "==> explore smoke on the sharded executor (100 schedules, 4 workers)"
cargo run --release --offline -q -p discsp-explore -- --algo awc-rslv --trials 100 --seed 1 --sharded 4

echo "==> service smoke (discsp-load fixed-seed matrix; every session trace re-audited)"
service_traces="target/service-traces"
rm -rf "$service_traces"
for active in 4 32; do
  cargo run --release --offline -q -p discsp-service --bin discsp-load -- \
    --sessions 64 --seed 7 --active "$active" --budget 48 \
    --trace-dir "$service_traces/active-$active" > /dev/null
done
cargo run --release --offline -q -p discsp-trace -- audit "$service_traces"/active-*/*.jsonl

echo "==> net smoke (coordinator + agent processes over loopback TCP)"
timeout 120 cargo test -q --release --offline -p discsp-net --test net_loopback

echo "==> bench smoke (store benches, reduced matrix; snapshot untouched)"
bench_out=$(DISCSP_BENCH_SMOKE=1 cargo bench --offline -p discsp-bench --bench nogood_check 2>&1) \
  || { echo "$bench_out"; echo "bench smoke: FAILED"; exit 1; }
echo "$bench_out" | grep -q "benchmarks completed" \
  || { echo "$bench_out"; echo "bench smoke: missing completion marker"; exit 1; }
echo "$bench_out" | tail -3

echo "==> scale smoke (sharded executor, 10^4 agents; snapshot untouched)"
scale_out=$(DISCSP_BENCH_SMOKE=1 cargo bench --offline -p discsp-bench --bench scale 2>&1) \
  || { echo "$scale_out"; echo "scale smoke: FAILED"; exit 1; }
echo "$scale_out" | grep -q "benchmarks completed" \
  || { echo "$scale_out"; echo "scale smoke: missing completion marker"; exit 1; }
echo "$scale_out" | tail -4

echo "verify: OK"
