//! # discsp — distributed constraint satisfaction with nogood learning
//!
//! A from-scratch Rust implementation of the system described in
//! Katsutoshi Hirayama and Makoto Yokoo, *The Effect of Nogood Learning
//! in Distributed Constraint Satisfaction*, ICDCS 2000:
//!
//! * the **asynchronous weak-commitment search** algorithm (AWC) with
//!   pluggable nogood learning — **resolvent-based** (the paper's
//!   contribution), **mcs-based**, **size-bounded**, and none;
//! * **asynchronous backtracking** (ABT) and the **distributed
//!   breakout** algorithm (DB) as baselines;
//! * a **synchronous cycle simulator** (the paper's measurement
//!   substrate, producing the `cycle` and `maxcck` metrics) and a real
//!   **threads-and-channels asynchronous runtime**;
//! * benchmark generators for **distributed 3-coloring** (planted,
//!   m = 2.7n), **3SAT** (deceptively planted, m = 4.3n), and
//!   **unique-solution 3SAT** (forced chain, m = 3.4n), plus DIMACS
//!   CNF I/O;
//! * a centralized **backtracking/min-conflicts** substrate for
//!   validation.
//!
//! The experiment harness regenerating every table and figure of the
//! paper lives in the `discsp-bench` crate
//! (`cargo run -p discsp-bench --bin repro --release -- all`).
//!
//! # Quickstart
//!
//! Solve a distributed 3-coloring problem with the AWC and
//! resolvent-based learning:
//!
//! ```
//! use discsp::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Four agents, one node each, ring constraints.
//! let mut b = DistributedCsp::builder();
//! let nodes: Vec<_> = (0..4).map(|_| b.variable(Domain::new(3))).collect();
//! for i in 0..4 {
//!     b.not_equal(nodes[i], nodes[(i + 1) % 4])?;
//! }
//! let problem = b.build()?;
//!
//! // Everyone starts red; the AWC negotiates a proper coloring.
//! let init = Assignment::total([Value::new(0); 4]);
//! let run = AwcSolver::new(AwcConfig::resolvent()).solve_sync(&problem, &init)?;
//!
//! assert!(run.outcome.metrics.termination.is_solved());
//! let solution = run.outcome.solution.unwrap();
//! assert!(problem.is_solution(&solution));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use discsp_awc as awc;
pub use discsp_core as core;
pub use discsp_cspsolve as cspsolve;
pub use discsp_dba as dba;
pub use discsp_net as net;
pub use discsp_probgen as probgen;
pub use discsp_runtime as runtime;
pub use discsp_trace as trace;

/// The most commonly used items, importable in one line.
pub mod prelude {
    pub use discsp_awc::{AbtSolver, AwcConfig, AwcSolver, Learning, MultiAwcSolver};
    pub use discsp_core::{
        AgentId, Assignment, DistributedCsp, Domain, Nogood, Priority, Termination, Value,
        ValueLabels, VariableId,
    };
    pub use discsp_cspsolve::{random_assignment, Backtracker, MinConflicts};
    pub use discsp_dba::{DbaSolver, WeightMode};
    pub use discsp_net::{AgentLaunch, NetConfig, SolveNet};
    pub use discsp_probgen::{
        cnf_to_discsp, coloring_to_discsp, generate_coloring, generate_one_sat3, generate_sat3,
        graph_to_discsp, model_to_assignment, paper_coloring, paper_one_sat3, paper_sat3, read_col,
        read_dimacs, write_col, write_dimacs,
    };
    pub use discsp_runtime::{
        AsyncConfig, LinkPolicy, ShardConfig, SplitMix64, SyncRun, SyncSimulator, VirtualConfig,
        PPM,
    };
    pub use discsp_trace::{audit, parse_trace, summarize, TraceEvent};
}
