//! Offline stub of `proptest`.
//!
//! The build environment has no crates.io access, so this crate
//! reimplements the API subset the workspace's property tests use:
//! integer-range / tuple / collection / option strategies, `prop_map`
//! and `prop_flat_map`, the `proptest!` macro, and the `prop_assert*`
//! family. Cases are sampled from a deterministic per-test RNG (seeded
//! from the test name), so every run explores the same inputs.
//!
//! Two deliberate simplifications versus real proptest:
//! - **No shrinking.** A failing case reports its generated inputs
//!   verbatim; rerunning reproduces it exactly (the RNG is
//!   deterministic), so a debugger can start from the printed values.
//! - **`prop_assume!` passes** instead of discarding and resampling, so
//!   `cases` is an upper bound on executed bodies, not a quota.

/// Deterministic SplitMix64 stream used to sample all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "cannot sample from an empty range");
        self.next_u64() % n
    }
}

pub mod strategy {
    use super::TestRng;

    /// Sampling-only stand-in for proptest's `Strategy`.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;

        fn sample(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64 + 1;
                    lo + rng.below(span) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u16, u32, u64, usize);

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::collections::{BTreeMap, BTreeSet};

    /// Collection size specification: an exact count or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let span = (self.max - self.min) as u64 + 1;
            self.min + (rng.next_u64() % span) as usize
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            // Duplicates shrink the yield, so over-sample; an element
            // universe smaller than `target` caps the set at the universe.
            for _ in 0..(target * 20 + 20) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.sample(rng));
            }
            out
        }
    }

    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut out = BTreeMap::new();
            for _ in 0..(target * 20 + 20) {
                if out.len() >= target {
                    break;
                }
                let k = self.key.sample(rng);
                let v = self.value.sample(rng);
                out.entry(k).or_insert(v);
            }
            out
        }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::TestRng;

    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `None` or `Some(sample)` with equal probability.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64() & 1 == 0 {
                Some(self.inner.sample(rng))
            } else {
                None
            }
        }
    }
}

pub mod test_runner {
    use super::TestRng;

    /// Subset of proptest's `ProptestConfig`: only `cases` matters here.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps the suite fast on
            // the single-core CI box while still exploring widely.
            ProptestConfig { cases: 64 }
        }
    }

    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner { config }
        }

        /// Runs `case` once per configured case with a deterministic RNG
        /// derived from the test name and case index. `case` returns
        /// `Err((message, inputs))` on assertion failure.
        pub fn run_named<F>(&mut self, name: &str, mut case: F)
        where
            F: FnMut(&mut TestRng) -> Result<(), (String, String)>,
        {
            let base = fnv1a(name.as_bytes());
            for index in 0..self.config.cases {
                let mut rng = TestRng::new(base ^ (u64::from(index).wrapping_mul(0xD6E8_FEB8_6659_FD93)));
                if let Err((message, inputs)) = case(&mut rng) {
                    panic!(
                        "proptest case {index} of `{name}` failed: {message}\n  inputs: {inputs}"
                    );
                }
            }
        }
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut hash = 0xCBF2_9CE4_8422_2325u64;
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }
}

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Entry macro: expands each `#[test] fn name(arg in strategy, ...)` item
/// into a plain `#[test]` that samples the strategies and runs the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            @cfg(<$crate::test_runner::ProptestConfig as ::core::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (@cfg($cfg:expr) $(
        #[test] fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(config);
            runner.run_named(stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), __rng);)+
                let __inputs = {
                    let mut s = ::std::string::String::new();
                    $(
                        s.push_str(concat!(stringify!($arg), " = "));
                        s.push_str(&::std::format!("{:?}; ", &$arg));
                    )+
                    s
                };
                let __result: ::core::result::Result<(), ::std::string::String> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                __result.map_err(|message| (message, __inputs))
            });
        }
    )*};
}

/// `prop_assert!`: like `assert!` but reported through the proptest
/// harness (returns an `Err` from the case body).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left), stringify!($right), l, r
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left), stringify!($right), l
            ));
        }
    }};
}

/// `prop_assume!`: real proptest discards and resamples; this stub
/// simply passes the case, which is sound (never hides a failure) but
/// means `cases` is an upper bound rather than a quota.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Pair(u32, u16);

    fn arb_pair() -> impl Strategy<Value = Pair> {
        (0u32..10, 0u16..4).prop_map(|(a, b)| Pair(a, b))
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..9, y in 2usize..=5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((2..=5).contains(&y));
        }

        #[test]
        fn collections_respect_sizes(
            v in crate::collection::vec(0u16..4, 2..6),
            s in crate::collection::btree_set(0u32..100, 1..=3usize),
            m in crate::collection::btree_map(0u32..100, 0u16..4, 0..4),
            o in crate::option::of(0u16..2),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(!s.is_empty() && s.len() <= 3);
            prop_assert!(m.len() < 4);
            prop_assert!(o.is_none() || o.unwrap() < 2);
        }

        #[test]
        fn flat_map_composes(p in (1u16..4).prop_flat_map(|n| crate::collection::vec(0u16..4, n as usize))) {
            prop_assert!(!p.is_empty() && p.len() < 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn config_and_custom_strategies(p in arb_pair(), flag in crate::option::of(0u32..2)) {
            prop_assert!(p.0 < 10 && p.1 < 4);
            prop_assume!(flag.is_some());
            prop_assert_eq!(p.clone(), p.clone());
            prop_assert_ne!(p.0 + 1, p.0);
        }
    }

    #[test]
    fn determinism_same_name_same_stream() {
        let mut a = crate::TestRng::new(7);
        let mut b = crate::TestRng::new(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
