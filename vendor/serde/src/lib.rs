//! Offline stub of `serde`.
//!
//! The build environment has no crates.io access, and nothing in this
//! workspace actually serializes data (there is no format crate such as
//! `serde_json`). The real dependency is therefore replaced by this
//! marker-trait facade so the workspace types can keep deriving
//! `Serialize`/`Deserialize` and downstream code can keep writing
//! `T: serde::Serialize` bounds. Swapping back to real serde later is a
//! one-line change in the workspace manifest.

/// Marker stand-in for `serde::Serialize`. Intentionally empty.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`. Intentionally empty and
/// non-generic (no lifetime parameter) — sufficient for derive bounds.
pub trait Deserialize {}

pub use serde_derive::{Deserialize, Serialize};

pub mod de {
    //! Mirror of `serde::de` for the `DeserializeOwned` bound.

    /// Marker stand-in for `serde::de::DeserializeOwned`; blanket-implemented
    /// for every type that derives the stub `Deserialize`.
    pub trait DeserializeOwned {}

    impl<T: crate::Deserialize> DeserializeOwned for T {}
}
