//! Offline stub of `serde_derive`.
//!
//! The build environment for this repository has no crates.io access, so
//! the real `serde`/`serde_derive` cannot be fetched. Nothing in the
//! workspace actually serializes data (there is no `serde_json` or other
//! format crate); the derives exist so the public types keep their
//! familiar `Serialize`/`Deserialize` bounds. This stub therefore emits a
//! trivial marker impl of the (empty) stub traits defined by the sibling
//! `vendor/serde` crate.
//!
//! The parser below is deliberately minimal: it handles `struct`/`enum`
//! items with an optional generic parameter list (bounds preserved,
//! defaults stripped), which covers every derive site in this workspace.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What we need to know about the item: its name, the generic parameter
/// list verbatim minus defaults (for `impl<...>`), and the bare parameter
/// names (for `Name<...>`).
struct Item {
    name: String,
    impl_generics: String,
    type_args: String,
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    // Skip attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
    let name = loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Consume the following bracket group.
                let _ = tokens.next();
            }
            Some(TokenTree::Ident(id))
                if id.to_string() == "struct" || id.to_string() == "enum" =>
            {
                match tokens.next() {
                    Some(TokenTree::Ident(name)) => break name.to_string(),
                    other => panic!("expected item name after struct/enum, got {other:?}"),
                }
            }
            Some(_) => {}
            None => panic!("no struct/enum item found in derive input"),
        }
    };

    // Optional generic parameter list.
    let mut param_tokens: Vec<TokenTree> = Vec::new();
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            let _ = tokens.next();
            let mut depth = 1usize;
            for tok in tokens.by_ref() {
                if let TokenTree::Punct(p) = &tok {
                    match p.as_char() {
                        '<' => depth += 1,
                        '>' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                param_tokens.push(tok);
            }
        }
    }

    // Split the parameter tokens on top-level commas.
    let mut params: Vec<Vec<TokenTree>> = vec![Vec::new()];
    let mut depth = 0usize;
    for tok in param_tokens {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                params.push(Vec::new());
                continue;
            }
            _ => {}
        }
        params.last_mut().expect("nonempty").push(tok);
    }
    params.retain(|p| !p.is_empty());

    let mut impl_parts = Vec::new();
    let mut arg_parts = Vec::new();
    for param in &params {
        // Strip a trailing `= default`, which is not legal in impls.
        let mut cut = param.len();
        let mut d = 0usize;
        for (i, tok) in param.iter().enumerate() {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => d += 1,
                    '>' => d -= 1,
                    '=' if d == 0 => {
                        cut = i;
                        break;
                    }
                    _ => {}
                }
            }
        }
        let decl: String = param[..cut]
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(" ");
        impl_parts.push(decl);

        // The bare name: `'a` for lifetimes, the first ident otherwise
        // (skipping a leading `const`).
        let mut name = String::new();
        let mut iter = param.iter();
        while let Some(tok) = iter.next() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '\'' => {
                    if let Some(TokenTree::Ident(id)) = iter.next() {
                        name = format!("'{id}");
                    }
                    break;
                }
                TokenTree::Ident(id) if id.to_string() == "const" => continue,
                TokenTree::Ident(id) => {
                    name = id.to_string();
                    break;
                }
                _ => {}
            }
        }
        arg_parts.push(name);
    }

    Item {
        name,
        impl_generics: impl_parts.join(", "),
        type_args: arg_parts.join(", "),
    }
}

fn marker_impl(input: TokenStream, trait_path: &str) -> TokenStream {
    let item = parse_item(input);
    let code = if item.impl_generics.is_empty() {
        format!(
            "#[automatically_derived] impl {} for {} {{}}",
            trait_path, item.name
        )
    } else {
        format!(
            "#[automatically_derived] impl<{}> {} for {}<{}> {{}}",
            item.impl_generics, trait_path, item.name, item.type_args
        )
    };
    code.parse().expect("generated impl parses")
}

/// Emits `impl serde::Serialize for T {}` (the stub trait is empty).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Serialize")
}

/// Emits `impl serde::Deserialize for T {}` (the stub trait is empty).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Deserialize")
}

// Keep Delimiter imported for future attribute parsing without warnings.
#[allow(dead_code)]
fn _unused(d: Delimiter) -> Delimiter {
    d
}
