//! Offline stub of `parking_lot`.
//!
//! Provides `Mutex`/`RwLock` with parking_lot's poison-free `lock()`
//! signature, backed by `std::sync`. Poisoning is deliberately ignored
//! (parking_lot has no poisoning at all), so a panicked holder does not
//! wedge later lockers.

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(3u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 4);
        assert_eq!(m.into_inner(), 4);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
