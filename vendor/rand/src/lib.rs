//! Offline stub of `rand` 0.8.
//!
//! The build environment has no crates.io access, so this crate provides
//! the exact API subset the workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range}`, and
//! `seq::SliceRandom::{choose, shuffle}` — backed by SplitMix64.
//!
//! **Determinism contract:** every golden metric and recorded benchmark
//! in this repository was produced with this generator. The stream
//! produced for a given seed must never change; treat the SplitMix64
//! constants and the sampling formulas below as frozen.

/// Core generator interface: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from integer seeds (subset of rand's `SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Values samplable by [`Rng::gen`].
pub trait Generable {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Generable for bool {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! generable_int {
    ($($t:ty),*) => {$(
        impl Generable for $t {
            fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
generable_int!(u16, u32, u64, usize, i32, i64);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i32, i64);

/// User-facing generator interface (subset of rand's `Rng`).
pub trait Rng: RngCore {
    fn gen<T: Generable>(&mut self) -> T
    where
        Self: Sized,
    {
        T::generate(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for rand's `StdRng`.
    ///
    /// Not cryptographic — but neither reproduction metrics nor benchmarks
    /// need that; they need a frozen, seedable stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Subset of rand's `SliceRandom`: uniform choice and Fisher–Yates
    /// shuffle.
    pub trait SliceRandom {
        type Item;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let idx = (rng.next_u64() % self.len() as u64) as usize;
                Some(&self[idx])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates, matching rand's iteration order (high to low).
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..256 {
            let v = rng.gen_range(3u16..9);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(2usize..=5);
            assert!((2..=5).contains(&w));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}
