//! Offline stub of `criterion`.
//!
//! The build environment has no crates.io access, so this crate provides
//! a minimal wall-clock harness with the criterion API shape the
//! workspace benches use: `Criterion`, `benchmark_group` (with
//! `sample_size`/`measurement_time`/`warm_up_time`), `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurements are real (monotonic-clock samples around batched
//! iterations, reporting mean and min ns/iter) but there is no
//! statistical analysis, outlier rejection, or HTML report. Numbers are
//! printed to stdout; benches that persist snapshots (BENCH_store.json)
//! do their own timing and serialization.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Timer handed to bench closures; `iter` runs the batch the harness
/// asked for and records its wall-clock duration.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

#[derive(Debug, Clone, Copy)]
struct Config {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

/// One finished measurement: mean and minimum ns per iteration.
#[derive(Debug, Clone)]
pub struct Measurement {
    pub name: String,
    pub mean_ns: f64,
    pub min_ns: f64,
    pub samples: usize,
}

#[derive(Default)]
pub struct Criterion {
    config: Config,
    results: Vec<Measurement>,
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let m = run_benchmark(name, self.config, f);
        self.results.push(m);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            config: Config::default(),
        }
    }

    /// All measurements taken so far (used by snapshot-writing benches).
    pub fn measurements(&self) -> &[Measurement] {
        &self.results
    }

    pub fn final_summary(&self) {
        println!("\n{} benchmarks completed", self.results.len());
    }
}

pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    config: Config,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.config.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().id);
        let m = run_benchmark(&full, self.config, f);
        self.criterion.results.push(m);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, config: Config, mut f: F) -> Measurement {
    // Warm-up: double the batch size until the warm-up budget is spent,
    // which also yields a per-iteration estimate for sizing samples.
    let mut iters = 1u64;
    let mut spent = Duration::ZERO;
    let mut per_iter_ns;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        spent += b.elapsed;
        per_iter_ns = (b.elapsed.as_nanos() as f64 / iters as f64).max(0.01);
        if spent >= config.warm_up_time || iters >= 1 << 40 {
            break;
        }
        iters = iters.saturating_mul(2);
    }

    let per_sample_ns =
        config.measurement_time.as_nanos() as f64 / config.sample_size as f64;
    let sample_iters = ((per_sample_ns / per_iter_ns) as u64).max(1);

    let mut samples_ns = Vec::with_capacity(config.sample_size);
    for _ in 0..config.sample_size {
        let mut b = Bencher {
            iters: sample_iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples_ns.push(b.elapsed.as_nanos() as f64 / sample_iters as f64);
    }
    let mean_ns = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
    let min_ns = samples_ns.iter().copied().fold(f64::INFINITY, f64::min);

    println!(
        "{name:<56} time/iter: mean {} min {} ({} samples x {} iters)",
        fmt_ns(mean_ns),
        fmt_ns(min_ns),
        samples_ns.len(),
        sample_iters
    );
    Measurement {
        name: name.to_string(),
        mean_ns,
        min_ns,
        samples: samples_ns.len(),
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:8.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:8.2} µs", ns / 1_000.0)
    } else {
        format!("{:8.2} ms", ns / 1_000_000.0)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes harness flags (e.g. `--bench`); ignore them.
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(30));
        group.warm_up_time(Duration::from_millis(5));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        let m = &c.measurements()[0];
        assert_eq!(m.name, "g/4");
        assert!(m.mean_ns > 0.0 && m.min_ns > 0.0);
        assert_eq!(m.samples, 3);
    }
}
