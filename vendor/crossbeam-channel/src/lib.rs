//! Offline stub of `crossbeam-channel`.
//!
//! The workspace uses only the MPSC subset of the crossbeam API —
//! `unbounded()`, cloned `Sender`s, a per-thread `Receiver` with
//! `recv_timeout`/`try_recv` — which `std::sync::mpsc` covers exactly,
//! so this stub simply re-exports std's types under crossbeam's names.
//! (std's `Receiver` is `!Sync`, unlike crossbeam's, but every receiver
//! in this workspace is moved into a single thread.)

pub use std::sync::mpsc::{
    RecvError, RecvTimeoutError, SendError, Sender, TryRecvError,
};

/// crossbeam's `Receiver` equivalent.
pub use std::sync::mpsc::Receiver;

/// Creates an unbounded channel, crossbeam-style.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    std::sync::mpsc::channel()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unbounded_round_trip() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1u32).unwrap();
        tx2.send(2u32).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop((tx, tx2));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }
}
