//! Distributed sensor-to-target assignment — a distributed resource
//! allocation task in the spirit of the DisCSP sensor-network
//! challenge problems.
//!
//! A field of sensors must each commit to tracking one target (or idle).
//! Constraints: a sensor can only track targets in range; each target
//! needs at least one dedicated *pair* of its in-range sensors to agree
//! (encoded pairwise); sensors sharing a radio channel must not track
//! the same target (interference). Each sensor is an agent; no sensor
//! learns the full field layout — only nogoods involving itself.
//!
//! Also demonstrates the multi-variable execution model: sensors mounted
//! on the same platform are hosted by one physical agent and coordinate
//! for free.
//!
//! ```text
//! cargo run --release --example sensor_network
//! ```

use discsp::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 3 targets (values 1..=3); value 0 = idle.
    const IDLE: u16 = 0;
    let target_names = ValueLabels::new(["idle", "T1", "T2", "T3"]);

    // 9 sensors on a 3×3 grid, 3 platforms of 3 sensors (one per row).
    // Range map: sensor (r, c) sees target t iff |c - t0[t]| ≤ 1 where
    // targets sit over columns 0, 1, 2.
    let mut b = DistributedCsp::builder();
    let mut sensors = Vec::new();
    for platform in 0..3u32 {
        for _ in 0..3 {
            sensors.push(b.variable_owned_by(Domain::new(4), AgentId::new(platform)));
        }
    }
    let in_range = |sensor: usize, target: u16| -> bool {
        let col = (sensor % 3) as i32;
        let target_col = (target - 1) as i32;
        (col - target_col).abs() <= 1
    };

    // A sensor never tracks an out-of-range target.
    for (s, &var) in sensors.iter().enumerate() {
        for t in 1..=3u16 {
            if !in_range(s, t) {
                b.nogood(Nogood::of([(var, Value::new(t))]))?;
            }
        }
    }
    // Interference: sensors in the same grid column share a channel and
    // must not track the same target.
    for col in 0..3 {
        for r1 in 0..3 {
            for r2 in (r1 + 1)..3 {
                let a = sensors[r1 * 3 + col];
                let c = sensors[r2 * 3 + col];
                for t in 1..=3u16 {
                    b.nogood(Nogood::of([(a, Value::new(t)), (c, Value::new(t))]))?;
                }
            }
        }
    }
    // Coverage: the sensors directly over target t on platforms 0 and 1
    // cannot both ignore it — at least one must commit. ("At least k"
    // constraints decompose into nogoods over the violating patterns.)
    for t in 1..=3u16 {
        let col = (t - 1) as usize;
        let p0 = sensors[col]; // platform 0, over the target
        let p1 = sensors[3 + col]; // platform 1, over the target
        for v0 in 0..4u16 {
            for v1 in 0..4u16 {
                if v0 != t && v1 != t {
                    b.nogood(Nogood::of([(p0, Value::new(v0)), (p1, Value::new(v1))]))?;
                }
            }
        }
    }
    let problem = b.build()?;
    println!(
        "sensor field: {problem} over {} platforms",
        problem.num_agents()
    );

    // All sensors start idle; platforms negotiate the assignment. The
    // multi-variable solver hosts each platform's three sensors together.
    let init = Assignment::total(vec![Value::new(IDLE); sensors.len()]);
    let run = MultiAwcSolver::new(AwcConfig::resolvent()).solve_sync(&problem, &init)?;
    println!(
        "{} in {} cycles, {} remote messages (intra-platform traffic is free)",
        run.outcome.metrics.termination,
        run.outcome.metrics.cycles,
        run.outcome.metrics.total_messages(),
    );

    let plan = run.outcome.solution.expect("the field is coverable");
    assert!(problem.is_solution(&plan));
    for platform in 0..3 {
        let desc: Vec<String> = (0..3)
            .map(|i| {
                let var = sensors[platform * 3 + i];
                let v = plan.get(var).expect("total");
                format!("s{}{}→{}", platform, i, target_names.label(v))
            })
            .collect();
        println!("  platform {}: {}", platform, desc.join("  "));
    }
    Ok(())
}
