//! Learning-method comparison on a single instance — a miniature of the
//! paper's Tables 1–3, runnable in seconds.
//!
//! Generates one distributed 3-coloring instance and one unique-solution
//! 3SAT instance, then runs the AWC under every learning configuration
//! (plus ABT and DB) over a handful of random initial assignments.
//!
//! ```text
//! cargo run --release --example learning_comparison
//! ```

use discsp::core::Aggregate;
use discsp::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn awc_batch(problem: &DistributedCsp, config: AwcConfig, inits: &[Assignment]) -> Aggregate {
    let solver = AwcSolver::new(config);
    let metrics: Vec<_> = inits
        .iter()
        .map(|init| {
            solver
                .solve_sync(problem, init)
                .expect("one variable per agent")
                .outcome
                .metrics
        })
        .collect();
    Aggregate::from_metrics(metrics.iter())
}

fn report(problem: &DistributedCsp, name: &str, trials: usize) {
    println!("--- {name} ({problem}, {trials} random starts) ---");
    let mut rng = StdRng::seed_from_u64(17);
    let inits: Vec<Assignment> = (0..trials)
        .map(|_| random_assignment(problem, &mut rng))
        .collect();

    for config in [
        AwcConfig::resolvent(),
        AwcConfig::mcs(),
        AwcConfig::kth_resolvent(3),
        AwcConfig::kth_resolvent(4),
        AwcConfig::no_learning(),
    ] {
        println!(
            "  AWC+{:<9} {}",
            config.label(),
            awc_batch(problem, config, &inits)
        );
    }

    // Baselines: ABT (the AWC's ancestor) and distributed breakout.
    let abt = AbtSolver::new();
    let abt_metrics: Vec<_> = inits
        .iter()
        .map(|init| abt.solve_sync(problem, init).unwrap().outcome.metrics)
        .collect();
    println!(
        "  {:<13} {}",
        "ABT",
        Aggregate::from_metrics(abt_metrics.iter())
    );

    let db = DbaSolver::new();
    let db_metrics: Vec<_> = inits
        .iter()
        .map(|init| db.solve_sync(problem, init).unwrap().outcome.metrics)
        .collect();
    println!(
        "  {:<13} {}",
        "DB",
        Aggregate::from_metrics(db_metrics.iter())
    );
    println!();
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let coloring = coloring_to_discsp(&paper_coloring(45, 3))?;
    report(&coloring, "distributed 3-coloring, n = 45", 6);

    let onesat = cnf_to_discsp(&paper_one_sat3(40, 3).cnf)?;
    report(&onesat, "unique-solution distributed 3SAT, n = 40", 6);

    println!("reading the rows: learning slashes cycles (communication);");
    println!("size bounds trim maxcck (computation); DB spends the fewest");
    println!("checks but by far the most cycles — the paper's Figure 2");
    println!("trade-off. Regenerate the real tables with:");
    println!("  cargo run -p discsp-bench --bin repro --release -- all");
    Ok(())
}
