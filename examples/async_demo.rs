//! Fully asynchronous execution: the same AWC agents on real threads.
//!
//! §5 of the paper: "our distributed constraint satisfaction algorithms
//! are designed for a fully asynchronous distributed system, and thereby
//! can work on any type of distributed systems." This example runs the
//! identical agent implementation on the threads-and-channels runtime —
//! one OS thread per agent, crossbeam channels as links, random message
//! jitter — and cross-checks the result against the synchronous
//! simulator.
//!
//! ```text
//! cargo run --example async_demo
//! ```

use std::time::Duration;

use discsp::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 40-node distributed 3-coloring problem at the paper's density.
    let instance = paper_coloring(40, 7);
    let problem = coloring_to_discsp(&instance)?;
    println!("problem: {problem}");

    let init = Assignment::total(vec![Value::new(0); 40]);
    let solver = AwcSolver::new(AwcConfig::resolvent());

    // Synchronous reference run.
    let sync = solver.solve_sync(&problem, &init)?;
    println!(
        "sync:  {} in {} cycles, {} messages",
        sync.outcome.metrics.termination,
        sync.outcome.metrics.cycles,
        sync.outcome.metrics.total_messages(),
    );

    // Asynchronous runs under increasing message jitter. Different
    // interleavings may find different solutions — both must be valid.
    for jitter in [0u64, 200, 1000] {
        let config = AsyncConfig {
            max_wall_time: Duration::from_secs(20),
            jitter_micros: jitter,
            seed: jitter ^ 42,
            ..AsyncConfig::default()
        };
        let report = solver.solve_async(&problem, &init, &config)?;
        println!(
            "async (jitter ≤ {jitter:>4} µs): {} in {:?}, {} activations, {} messages",
            report.outcome.metrics.termination,
            report.wall_time,
            report.activations,
            report.outcome.metrics.total_messages(),
        );
        let solution = report.outcome.solution.expect("quiescent solution");
        assert!(problem.is_solution(&solution));
    }

    println!("\nall asynchronous interleavings reached valid quiescent solutions ✓");
    Ok(())
}
