//! Quickstart: the paper's Figure 1 neighborhood, solved end to end.
//!
//! Five agents color a small graph; agent 5's node is adjacent to all
//! four others. We run the AWC with resolvent-based learning on the
//! synchronous simulator and print the negotiation summary.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use discsp::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Build the distributed problem: one agent per node.
    let mut b = DistributedCsp::builder();
    let nodes: Vec<_> = (0..5).map(|_| b.variable(Domain::new(3))).collect();
    // x5 (index 4 here) is adjacent to x1..x4; x1-x2 and x3-x4 arcs make
    // the instance less trivial.
    for &other in &nodes[..4] {
        b.not_equal(other, nodes[4])?;
    }
    b.not_equal(nodes[0], nodes[1])?;
    b.not_equal(nodes[2], nodes[3])?;
    let problem = b.build()?;
    println!("problem: {problem}");

    // Worst-case start: every agent picks red.
    let init = Assignment::total(vec![Value::new(0); 5]);

    let solver = AwcSolver::new(AwcConfig::resolvent()).record_history(true);
    let run = solver.solve_sync(&problem, &init)?;
    let metrics = &run.outcome.metrics;

    println!("terminated: {}", metrics.termination);
    println!("cycles:     {}", metrics.cycles);
    println!("maxcck:     {}", metrics.maxcck);
    println!(
        "messages:   {} ok? / {} nogood",
        metrics.ok_messages, metrics.nogood_messages
    );

    let solution = run.outcome.solution.expect("solved");
    let colors = ValueLabels::colors3();
    for (i, node) in nodes.iter().enumerate() {
        let value = solution.get(*node).expect("total solution");
        println!("  agent {i}: node x{i} → {}", colors.label(value));
    }
    assert!(problem.is_solution(&solution));

    println!("\nper-cycle violations:");
    for record in &run.history {
        println!(
            "  cycle {:>2}: {} violated, {} messages",
            record.cycle, record.violations, record.messages
        );
    }
    Ok(())
}
