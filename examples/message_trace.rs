//! Message trace: watch an AWC negotiation unfold event by event.
//!
//! Runs the AWC on a frustrated little instance with trace recording on
//! and prints every message delivery and variable change, grouped by
//! cycle — useful for understanding (and debugging) the protocol.
//!
//! ```text
//! cargo run --example message_trace
//! ```

use discsp::prelude::*;
use discsp::runtime::render_trace;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4-cycle with a chord: the uniform start forces real negotiation.
    let mut b = DistributedCsp::builder();
    let nodes: Vec<_> = (0..4).map(|_| b.variable(Domain::new(3))).collect();
    for i in 0..4 {
        b.not_equal(nodes[i], nodes[(i + 1) % 4])?;
    }
    b.not_equal(nodes[0], nodes[2])?;
    let problem = b.build()?;

    let init = Assignment::total(vec![Value::new(0); 4]);
    let solver = AwcSolver::new(AwcConfig::resolvent());
    let agents = solver.build_agents(&problem, &init)?;
    let mut sim = SyncSimulator::new(agents);
    sim.record_trace(true);
    let run = sim.run(&problem)?;

    println!(
        "solved in {} cycles; full event trace:\n",
        run.outcome.metrics.cycles
    );
    print!("{}", render_trace(&run.trace));

    println!("\nlearned nogoods still held by each agent:");
    for agent in sim.agents() {
        let learned: Vec<String> = agent
            .store()
            .iter()
            .filter(|ng| !problem.nogoods().iter().any(|init| ng == init))
            .map(|ng| ng.to_string())
            .collect();
        println!(
            "  {}: {}",
            agent.var(),
            if learned.is_empty() {
                "(none)".to_string()
            } else {
                learned.join("  ")
            }
        );
    }
    Ok(())
}
