//! Solving over faulty links: drops, duplicates, delays, reordering.
//!
//! The link layer injects seeded faults into every message, so the same
//! agents that run over perfect channels now face a hostile network —
//! and still solve, because dropped messages are retransmitted on stall
//! and agents re-announce idempotently. On the deterministic runtime a
//! `(seed, LinkPolicy)` pair fully determines the run: this example
//! executes every configuration twice and checks the replays are
//! bit-identical, then repeats one run on the threaded runtime where
//! only the outcome (not the interleaving) is reproducible.
//!
//! Every run records its event trace, and every trace is audited
//! in-process: the `discsp-trace` analyzer recomputes `cycle`,
//! `maxcck`, `total_checks`, and the message conservation law from the
//! events alone and must agree with the `RunMetrics` the runtime
//! reported. Set `TRACE_DIR=some/dir` to also dump each trace as JSONL
//! so CI can re-audit them with the standalone binary
//! (`discsp-trace audit some/dir/*.jsonl`).
//!
//! ```text
//! cargo run --example lossy_links            # demo over 3 policies
//! cargo run --example lossy_links -- 25      # sweep 25 seeds per policy
//! ```

use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration;

use discsp::prelude::*;
use discsp::trace::event_to_json;

fn policies() -> Vec<(&'static str, LinkPolicy)> {
    vec![
        ("lossy 10%", LinkPolicy::lossy(PPM / 10)),
        ("delayed 0..=3", LinkPolicy::delayed(0, 3)),
        (
            "hostile",
            LinkPolicy::lossy(PPM / 10)
                .with_duplication(PPM / 50)
                .with_delay(0, 2)
                .with_reordering(2),
        ),
    ]
}

/// File-name-safe form of a policy label ("lossy 10%" → "lossy_10").
fn slug(name: &str) -> String {
    let mut out = String::new();
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else if !out.ends_with('_') {
            out.push('_');
        }
    }
    out.trim_matches('_').to_string()
}

/// Hard gate on one recorded run: the trace must audit cleanly and the
/// audit's independently recomputed metrics must equal what the runtime
/// reported. With `dir` set, also writes the trace as `<label>.jsonl`.
fn audit_and_dump(
    trace: &[TraceEvent],
    reported: &discsp::core::RunMetrics,
    label: &str,
    dir: Option<&Path>,
) -> Result<(), Box<dyn std::error::Error>> {
    let verdict = audit(trace).map_err(|e| format!("{label}: audit refused the trace: {e}"))?;
    if !verdict.passed() {
        return Err(format!("{label}: trace audit failed: {:?}", verdict.failures).into());
    }
    if &verdict.metrics != reported {
        return Err(format!("{label}: RunEnd metrics drifted from the report").into());
    }
    if let Some(dir) = dir {
        let text: String = trace.iter().map(|e| event_to_json(e) + "\n").collect();
        fs::write(dir.join(format!("{label}.jsonl")), text)?;
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sweep: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(3);

    let trace_dir: Option<PathBuf> = std::env::var_os("TRACE_DIR").map(PathBuf::from);
    if let Some(dir) = &trace_dir {
        fs::create_dir_all(dir)?;
    }

    let instance = paper_coloring(20, 13);
    let problem = coloring_to_discsp(&instance)?;
    println!("problem: {problem}");
    let init = Assignment::total(vec![Value::new(0); 20]);
    let awc = AwcSolver::new(AwcConfig::resolvent());
    let dba = DbaSolver::new();

    for (name, link) in policies() {
        println!("\n== {name} ==");
        for seed in 0..sweep {
            let config = VirtualConfig {
                seed,
                link,
                record_trace: true,
                ..VirtualConfig::default()
            };
            let first = awc.solve_virtual(&problem, &init, &config)?;
            let replay = awc.solve_virtual(&problem, &init, &config)?;
            assert_eq!(
                first.outcome, replay.outcome,
                "replay diverged — determinism is broken"
            );
            assert_eq!(first.ticks, replay.ticks);
            assert_eq!(
                first.trace, replay.trace,
                "replay diverged — the event traces differ"
            );
            let m = &first.outcome.metrics;
            assert!(m.termination.is_solved(), "seed {seed} unsolved");
            audit_and_dump(
                &first.trace,
                m,
                &format!("awc_{}_seed{seed}", slug(name)),
                trace_dir.as_deref(),
            )?;
            println!(
                "awc seed {seed:>2}: solved in {} ticks — {} sent, {} dropped, \
                 {} duplicated, {} reordered, {} retransmitted, max delay {}",
                first.ticks,
                m.messages_sent,
                m.messages_dropped,
                m.messages_duplicated,
                m.messages_reordered,
                m.messages_retransmitted,
                m.max_delivery_delay,
            );

            let report = dba.solve_virtual(&problem, &init, &config)?;
            let m = &report.outcome.metrics;
            assert!(m.termination.is_solved(), "dba seed {seed} unsolved");
            audit_and_dump(
                &report.trace,
                m,
                &format!("dba_{}_seed{seed}", slug(name)),
                trace_dir.as_deref(),
            )?;
            println!(
                "dba seed {seed:>2}: solved in {} ticks — {} sent, {} dropped",
                report.ticks, m.messages_sent, m.messages_dropped,
            );
        }
    }

    // Forgetting-enabled AWC under the hostile policy: evictions emit
    // NogoodForgotten events, and the audit must stay green — forgetting
    // changes no counter the paper measures.
    let (_, hostile) = policies().pop().expect("nonempty");
    let forgetful = AwcSolver::new(AwcConfig::resolvent().with_forget_limit(4));
    println!("\n== hostile + forgetting (Rslv/f4) ==");
    for seed in 0..sweep {
        let config = VirtualConfig {
            seed,
            link: hostile,
            record_trace: true,
            ..VirtualConfig::default()
        };
        let first = forgetful.solve_virtual(&problem, &init, &config)?;
        let replay = forgetful.solve_virtual(&problem, &init, &config)?;
        assert_eq!(
            first.trace, replay.trace,
            "forgetting replay diverged — eviction is not deterministic"
        );
        let m = &first.outcome.metrics;
        assert!(m.termination.is_solved(), "forgetful seed {seed} unsolved");
        audit_and_dump(
            &first.trace,
            m,
            &format!("awc_forget_hostile_seed{seed}"),
            trace_dir.as_deref(),
        )?;
        let forgotten: u64 = first
            .trace
            .iter()
            .filter_map(|e| match e {
                TraceEvent::NogoodForgotten { count, .. } => Some(*count),
                _ => None,
            })
            .sum();
        println!(
            "awc/f4 seed {seed:>2}: solved in {} ticks — {} nogoods learned, {} forgotten",
            first.ticks, m.nogoods_generated, forgotten,
        );
    }

    // The threaded runtime under the hostile policy: real concurrency, so
    // the interleaving differs run to run, but the outcome must not.
    let (_, link) = policies().pop().expect("nonempty");
    let config = AsyncConfig {
        max_wall_time: Duration::from_secs(60),
        seed: 1,
        link,
        record_trace: true,
        ..AsyncConfig::default()
    };
    let report = awc.solve_async(&problem, &init, &config)?;
    let m = &report.outcome.metrics;
    audit_and_dump(&report.trace, m, "awc_async_hostile", trace_dir.as_deref())?;
    println!(
        "\nthreaded hostile run: {} in {:?} — {} dropped, {} retransmitted, {} nudges",
        m.termination, report.wall_time, m.messages_dropped, m.messages_retransmitted,
        report.nudges,
    );
    assert!(m.termination.is_solved());

    println!(
        "\nall faulty-link runs solved, every deterministic replay was bit-identical, \
         and every trace audit confirmed the reported metrics ✓"
    );
    Ok(())
}
