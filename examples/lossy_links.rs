//! Solving over faulty links: drops, duplicates, delays, reordering.
//!
//! The link layer injects seeded faults into every message, so the same
//! agents that run over perfect channels now face a hostile network —
//! and still solve, because dropped messages are retransmitted on stall
//! and agents re-announce idempotently. On the deterministic runtime a
//! `(seed, LinkPolicy)` pair fully determines the run: this example
//! executes every configuration twice and checks the replays are
//! bit-identical, then repeats one run on the threaded runtime where
//! only the outcome (not the interleaving) is reproducible.
//!
//! ```text
//! cargo run --example lossy_links            # demo over 3 policies
//! cargo run --example lossy_links -- 25      # sweep 25 seeds per policy
//! ```

use std::time::Duration;

use discsp::prelude::*;

fn policies() -> Vec<(&'static str, LinkPolicy)> {
    vec![
        ("lossy 10%", LinkPolicy::lossy(PPM / 10)),
        ("delayed 0..=3", LinkPolicy::delayed(0, 3)),
        (
            "hostile",
            LinkPolicy::lossy(PPM / 10)
                .with_duplication(PPM / 50)
                .with_delay(0, 2)
                .with_reordering(2),
        ),
    ]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sweep: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(3);

    let instance = paper_coloring(20, 13);
    let problem = coloring_to_discsp(&instance)?;
    println!("problem: {problem}");
    let init = Assignment::total(vec![Value::new(0); 20]);
    let awc = AwcSolver::new(AwcConfig::resolvent());
    let dba = DbaSolver::new();

    for (name, link) in policies() {
        println!("\n== {name} ==");
        for seed in 0..sweep {
            let config = VirtualConfig {
                seed,
                link,
                ..VirtualConfig::default()
            };
            let first = awc.solve_virtual(&problem, &init, &config)?;
            let replay = awc.solve_virtual(&problem, &init, &config)?;
            assert_eq!(
                first.outcome, replay.outcome,
                "replay diverged — determinism is broken"
            );
            assert_eq!(first.ticks, replay.ticks);
            let m = &first.outcome.metrics;
            assert!(m.termination.is_solved(), "seed {seed} unsolved");
            println!(
                "awc seed {seed:>2}: solved in {} ticks — {} sent, {} dropped, \
                 {} duplicated, {} reordered, {} retransmitted, max delay {}",
                first.ticks,
                m.messages_sent,
                m.messages_dropped,
                m.messages_duplicated,
                m.messages_reordered,
                m.messages_retransmitted,
                m.max_delivery_delay,
            );

            let report = dba.solve_virtual(&problem, &init, &config)?;
            let m = &report.outcome.metrics;
            assert!(m.termination.is_solved(), "dba seed {seed} unsolved");
            println!(
                "dba seed {seed:>2}: solved in {} ticks — {} sent, {} dropped",
                report.ticks, m.messages_sent, m.messages_dropped,
            );
        }
    }

    // The threaded runtime under the hostile policy: real concurrency, so
    // the interleaving differs run to run, but the outcome must not.
    let (_, link) = policies().pop().expect("nonempty");
    let config = AsyncConfig {
        max_wall_time: Duration::from_secs(60),
        seed: 1,
        link,
        ..AsyncConfig::default()
    };
    let report = awc.solve_async(&problem, &init, &config)?;
    let m = &report.outcome.metrics;
    println!(
        "\nthreaded hostile run: {} in {:?} — {} dropped, {} retransmitted, {} nudges",
        m.termination, report.wall_time, m.messages_dropped, m.messages_retransmitted,
        report.nudges,
    );
    assert!(m.termination.is_solved());

    println!("\nall faulty-link runs solved; every deterministic replay was bit-identical ✓");
    Ok(())
}
