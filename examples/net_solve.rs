//! Networked solving: one coordinator plus one TCP endpoint per agent.
//!
//! `solve_net` runs the same AWC/DBA agents as the in-process runtimes,
//! but every message crosses a real socket: the coordinator ships each
//! agent its slice of the problem over a length-prefixed binary
//! protocol, relays all traffic through the deterministic fault lottery,
//! and aggregates every agent's statistics back into one `RunMetrics`.
//! This example launches the endpoints as threads (each still speaking
//! the full wire protocol) and cross-checks the networked run against
//! `solve_virtual` with the same `(seed, policy)`: the fault counters
//! must agree bit-for-bit.
//!
//! ```text
//! cargo run --example net_solve
//! ```
//!
//! To watch real agent *processes* instead, use the bundled binary:
//! `cargo run -p discsp-net -- demo --agents 6 --launch processes`.

use discsp::prelude::*;

fn ring(n: usize) -> Result<DistributedCsp, Box<dyn std::error::Error>> {
    let mut b = DistributedCsp::builder();
    let vars: Vec<_> = (0..n).map(|_| b.variable(Domain::new(3))).collect();
    for i in 0..n {
        b.not_equal(vars[i], vars[(i + 1) % n])?;
    }
    Ok(b.build()?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 8;
    let problem = ring(n)?;
    let init = Assignment::total(vec![Value::new(0); n]);
    let awc = AwcSolver::new(AwcConfig::resolvent());

    println!("== perfect links ==");
    let config = NetConfig {
        seed: 7,
        ..NetConfig::default()
    };
    let report = awc.solve_net(&problem, &init, &config, &AgentLaunch::Threads)?;
    let m = &report.outcome.metrics;
    println!(
        "{n}-agent ring over TCP: {:?} in {} cycles, {} messages, {} checks (maxcck {})",
        m.termination,
        m.cycles,
        m.total_messages(),
        m.total_checks,
        m.maxcck,
    );

    println!("\n== lossy links: 15% drop, seeded ==");
    let lossy = NetConfig {
        seed: 7,
        link: LinkPolicy::lossy(PPM * 15 / 100),
        ..NetConfig::default()
    };
    let net = awc.solve_net(&problem, &init, &lossy, &AgentLaunch::Threads)?;
    let nm = &net.outcome.metrics;
    println!(
        "over TCP:     {:?}, sent {}, dropped {}, retransmitted {}",
        nm.termination, nm.messages_sent, nm.messages_dropped, nm.messages_retransmitted
    );

    // The coordinator's relay path consumes the same per-link fault
    // streams as the virtual executor: same (seed, policy), same fate
    // for the k-th message on every link.
    let virt = awc.solve_virtual(
        &problem,
        &init,
        &VirtualConfig {
            seed: 7,
            link: LinkPolicy::lossy(PPM * 15 / 100),
            ..VirtualConfig::default()
        },
    )?;
    let vm = &virt.outcome.metrics;
    println!(
        "in-process:   {:?}, sent {}, dropped {}, retransmitted {}",
        vm.termination, vm.messages_sent, vm.messages_dropped, vm.messages_retransmitted
    );
    assert_eq!(nm.messages_dropped, vm.messages_dropped);
    assert_eq!(nm.messages_retransmitted, vm.messages_retransmitted);
    assert_eq!(nm.total_messages(), vm.total_messages());
    println!("fault schedules agree bit-for-bit");
    Ok(())
}
