//! SAT pipeline: generate → export DIMACS → re-import → solve three ways.
//!
//! Exercises the full benchmark path the paper's evaluation uses: a
//! unique-solution 3SAT instance (3ONESAT-GEN-style) is generated,
//! round-tripped through DIMACS (as one would with the original AIM
//! files), encoded as a distributed CSP, and solved by the AWC, the
//! distributed breakout, and the centralized backtracker — all three
//! must agree on the unique model.
//!
//! ```text
//! cargo run --example sat_pipeline
//! ```

use discsp::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 3ONESAT-GEN-style instance: m = 3.4 n, exactly one model.
    let n = 30;
    let instance = paper_one_sat3(n, 2026);
    println!(
        "generated {} ({} clauses, unique model verified: {})",
        instance.cnf,
        instance.cnf.num_clauses(),
        instance.verified_unique
    );

    // DIMACS round trip — the same path genuine AIM files would take.
    let mut dimacs = Vec::new();
    write_dimacs(&instance.cnf, &mut dimacs)?;
    println!("dimacs export: {} bytes", dimacs.len());
    let reloaded = read_dimacs(dimacs.as_slice())?;
    assert_eq!(reloaded.clauses(), instance.cnf.clauses());

    // Distribute: one Boolean variable per agent, clauses as nogoods.
    let problem = cnf_to_discsp(&reloaded)?;
    println!("distributed: {problem}");

    // 1. Centralized backtracking (the validation substrate).
    let central = Backtracker::new(&problem).solve();
    let central_model = central.solution().expect("instance is satisfiable").clone();

    // 2. AWC with size-bounded resolvent learning (the paper's best
    //    configuration for this family: 4thRslv).
    let init = Assignment::total(vec![Value::FALSE; n as usize]);
    let awc = AwcSolver::new(AwcConfig::kth_resolvent(4)).solve_sync(&problem, &init)?;
    println!(
        "AWC+4thRslv: {} in {} cycles, {} nogood checks (maxcck {})",
        awc.outcome.metrics.termination,
        awc.outcome.metrics.cycles,
        awc.outcome.metrics.total_checks,
        awc.outcome.metrics.maxcck,
    );
    let awc_model = awc.outcome.solution.expect("solved");

    // 3. Distributed breakout.
    let db = DbaSolver::new().solve_sync(&problem, &init)?;
    println!(
        "DB:          {} in {} cycles (maxcck {})",
        db.outcome.metrics.termination, db.outcome.metrics.cycles, db.outcome.metrics.maxcck,
    );
    let db_model = db.outcome.solution.expect("solved");

    // The instance has exactly one model, so all three must coincide —
    // and match the planted model.
    let planted = model_to_assignment(&instance.planted);
    assert_eq!(central_model, planted);
    assert_eq!(awc_model, planted);
    assert_eq!(db_model, planted);
    println!("\nall three solvers agree on the unique model ✓");
    Ok(())
}
