//! Distributed meeting scheduling — the kind of multi-agent resource
//! allocation task the paper's introduction motivates.
//!
//! Each department owns one meeting and must pick a time slot. Shared
//! attendees forbid overlapping slots, and some departments cannot meet
//! in certain slots (unary constraints). No department reveals anything
//! beyond slot announcements and learned nogoods — the privacy argument
//! for solving this as a *distributed* CSP rather than shipping all
//! calendars to a central scheduler (§2.2).
//!
//! ```text
//! cargo run --example meeting_scheduling
//! ```

use discsp::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const SLOTS: u16 = 4; // 9:00, 10:00, 11:00, 13:00
    let slot_names = ValueLabels::new(["9:00", "10:00", "11:00", "13:00"]);
    let departments = [
        "engineering",
        "design",
        "sales",
        "legal",
        "finance",
        "support",
    ];

    let mut b = DistributedCsp::builder();
    let meetings: Vec<_> = departments
        .iter()
        .map(|_| b.variable(Domain::new(SLOTS)))
        .collect();

    // Shared attendees: the CTO sits in engineering+design+support, the
    // CFO in sales+legal+finance, the CEO in engineering+sales.
    let conflicting_pairs = [
        (0, 1), // CTO
        (0, 5),
        (1, 5),
        (2, 3), // CFO
        (2, 4),
        (3, 4),
        (0, 2), // CEO
    ];
    for (a, c) in conflicting_pairs {
        b.not_equal(meetings[a], meetings[c])?;
    }
    // Legal can't meet before 11:00; support staffs the morning desk and
    // can only meet at 9:00 or 13:00.
    for slot in [0, 1] {
        b.nogood(Nogood::of([(meetings[3], Value::new(slot))]))?;
    }
    for slot in [1, 2] {
        b.nogood(Nogood::of([(meetings[5], Value::new(slot))]))?;
    }
    let problem = b.build()?;
    println!("problem: {problem}");

    // Everyone optimistically opens at 9:00.
    let init = Assignment::total(vec![Value::new(0); departments.len()]);
    let run = AwcSolver::new(AwcConfig::resolvent()).solve_sync(&problem, &init)?;

    println!(
        "negotiated in {} cycles ({} ok? messages, {} nogoods learned)",
        run.outcome.metrics.cycles,
        run.outcome.metrics.ok_messages,
        run.outcome.metrics.nogoods_generated
    );
    let schedule = run.outcome.solution.expect("the calendar is satisfiable");
    assert!(problem.is_solution(&schedule));
    for (dept, meeting) in departments.iter().zip(&meetings) {
        let slot = schedule.get(*meeting).expect("total");
        println!("  {dept:<12} meets at {}", slot_names.label(slot));
    }

    // An impossible week: the CTO must now also attend sales + legal,
    // pinning five mutually conflicting meetings into four slots.
    let mut b = DistributedCsp::builder();
    let meetings: Vec<_> = (0..5).map(|_| b.variable(Domain::new(SLOTS))).collect();
    for a in 0..5 {
        for c in (a + 1)..5 {
            b.not_equal(meetings[a], meetings[c])?;
        }
    }
    b.nogood(Nogood::of([(meetings[4], Value::new(0))]))?;
    let overbooked = b.build()?;
    let init = Assignment::total(vec![Value::new(0); 5]);
    let run = AwcSolver::new(AwcConfig::resolvent())
        .cycle_limit(5_000)
        .solve_sync(&overbooked, &init)?;
    println!(
        "\noverbooked week: {} (the empty nogood was derived — a proof, not a timeout)",
        run.outcome.metrics.termination
    );
    assert_eq!(run.outcome.metrics.termination, Termination::Insoluble);
    Ok(())
}
