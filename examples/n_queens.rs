//! Distributed n-queens — the classic DisCSP demonstration from the
//! AWC's original papers: one agent per row, each choosing its queen's
//! column; attacks are pairwise nogoods.
//!
//! Shows AWC priorities at work: the deadend-prone middle rows raise
//! their priorities and the rest of the board reorganizes around them.
//!
//! ```text
//! cargo run --release --example n_queens [n]
//! ```

use discsp::prelude::*;

fn build_queens(n: u16) -> Result<DistributedCsp, discsp::core::CoreError> {
    let mut b = DistributedCsp::builder();
    let rows: Vec<_> = (0..n).map(|_| b.variable(Domain::new(n))).collect();
    for r1 in 0..n as usize {
        for r2 in (r1 + 1)..n as usize {
            let gap = (r2 - r1) as i32;
            for c1 in 0..n as i32 {
                // Same column.
                b.nogood(Nogood::of([
                    (rows[r1], Value::new(c1 as u16)),
                    (rows[r2], Value::new(c1 as u16)),
                ]))?;
                // Diagonals.
                for c2 in [c1 - gap, c1 + gap] {
                    if (0..n as i32).contains(&c2) {
                        b.nogood(Nogood::of([
                            (rows[r1], Value::new(c1 as u16)),
                            (rows[r2], Value::new(c2 as u16)),
                        ]))?;
                    }
                }
            }
        }
    }
    b.build()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: u16 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(8);
    let problem = build_queens(n)?;
    println!("distributed {n}-queens: {problem}");

    // Everyone starts in column 0 (maximally conflicted).
    let init = Assignment::total(vec![Value::new(0); n as usize]);
    let run = AwcSolver::new(AwcConfig::resolvent()).solve_sync(&problem, &init)?;
    println!(
        "{} in {} cycles ({} nogoods learned, maxcck {})",
        run.outcome.metrics.termination,
        run.outcome.metrics.cycles,
        run.outcome.metrics.nogoods_generated,
        run.outcome.metrics.maxcck,
    );

    let board = run
        .outcome
        .solution
        .expect("n-queens is solvable for n ≥ 4");
    assert!(problem.is_solution(&board));
    for row in 0..n {
        let col = board
            .get(VariableId::new(row as u32))
            .expect("total")
            .index();
        let mut line = String::new();
        for c in 0..n as usize {
            line.push_str(if c == col { " ♛" } else { " ·" });
        }
        println!("{line}");
    }
    Ok(())
}
